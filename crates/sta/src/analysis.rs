//! Arrival propagation, max-frequency search and critical-path
//! reporting.

use crate::constraints::StaConstraints;
use crate::cts::ClockArrivals;
use crate::dcalc::{cell_arc_delay, wire_slew};
use macro3d_extract::NetParasitics;
use macro3d_netlist::traverse::{is_timing_endpoint, topo_order};
use macro3d_netlist::{Design, InstId, Master, NetId, PinRef};
use macro3d_par::{parallel_fold, Parallelism};
use macro3d_route::RoutedDesign;
use macro3d_tech::{Corner, PinDir};

/// Everything one analysis run needs. Parasitic sink order must match
/// `design.sinks(net)` order (as produced by the flows' extraction
/// step).
pub struct StaInput<'a> {
    /// The netlist (post-CTS, post-repeater insertion).
    pub design: &'a Design,
    /// Per-net parasitics indexed by `NetId`.
    pub parasitics: &'a [NetParasitics],
    /// Routing result, for critical-path wirelength reporting (may be
    /// `None` for estimation-stage runs).
    pub routed: Option<&'a RoutedDesign>,
    /// Constraints.
    pub constraints: &'a StaConstraints,
    /// Clock arrivals from CTS (use [`ClockArrivals::ideal`] before
    /// CTS).
    pub clock: &'a ClockArrivals,
    /// Analysis corner (the paper signs off at SS).
    pub corner: Corner,
}

/// Timing analysis result.
#[derive(Clone, Debug)]
pub struct TimingReport {
    /// Minimum feasible clock period, ps.
    pub min_period_ps: f64,
    /// Maximum clock frequency, MHz.
    pub fclk_mhz: f64,
    /// Nets along the critical path, endpoint first.
    pub crit_path_nets: Vec<NetId>,
    /// Routed wirelength of the critical path, mm (0 when `routed`
    /// was not provided).
    pub crit_path_wirelength_mm: f64,
    /// Number of combinational stages on the critical path.
    pub crit_path_stages: usize,
    /// Clock-tree depth copied from the input.
    pub clock_tree_depth: usize,
    /// Clock skew, ps.
    pub clock_skew_ps: f64,
}

/// Computes the worst slack at a given period, ps.
pub fn worst_slack(input: &StaInput<'_>, period_ps: f64) -> f64 {
    worst_slack_par(input, period_ps, &Parallelism::serial())
}

/// [`worst_slack`] with endpoint checks fanned out over `par`
/// (identical result for any thread count).
pub fn worst_slack_par(input: &StaInput<'_>, period_ps: f64, par: &Parallelism) -> f64 {
    let ctx = StaContext::build(input.design, input.constraints.clock_net);
    Propagation::run(input, &ctx, period_ps, par).worst_slack
}

/// One precomputed setup check: a register/macro data pin, the net
/// sink feeding it, and its period-independent requirement pieces.
struct EndpointCheck {
    net: NetId,
    six: u32,
    /// Capturing instance (indexes the clock-arrival table).
    clk_inst: InstId,
    /// Setup requirement before corner derating.
    setup_ps: f64,
}

/// Period-independent analysis context (combinational order, the
/// pin→(net, sink index) map and the flattened endpoint-check list),
/// built once per design revision and reused by every propagation
/// pass of the binary search.
struct StaContext {
    order: Vec<InstId>,
    pin_net_six: std::collections::HashMap<(u32, u16), (NetId, u32)>,
    endpoint_checks: Vec<EndpointCheck>,
}

impl StaContext {
    fn build(design: &Design, clock_net: NetId) -> StaContext {
        let order = match topo_order(design) {
            Ok(o) => o,
            Err(_) => design
                .inst_ids()
                .filter(|&i| !is_timing_endpoint(design, i))
                .collect(),
        };
        let mut pin_net_six = std::collections::HashMap::new();
        for net in design.net_ids() {
            for (six, sink) in design.sinks(net).enumerate() {
                if let PinRef::Inst { inst, pin } = sink {
                    pin_net_six.insert((inst.0, pin), (net, six as u32));
                }
            }
        }

        // flatten the per-endpoint setup checks once: the propagation
        // passes (34 per analyze) then scan a plain slice instead of
        // re-walking cells, macro defs and pin maps every time
        let lib = design.library();
        let mut endpoint_checks = Vec::new();
        for inst in design.inst_ids() {
            match design.inst(inst).master {
                Master::Cell(c) => {
                    let cell = lib.cell(c);
                    if !cell.is_sequential() {
                        continue;
                    }
                    for pin in cell.data_input_pins() {
                        if let Some(&(net, six)) = pin_net_six.get(&(inst.0, pin as u16)) {
                            endpoint_checks.push(EndpointCheck {
                                net,
                                six,
                                clk_inst: inst,
                                setup_ps: cell.setup_ps,
                            });
                        }
                    }
                }
                Master::Macro(m) => {
                    let def = design.macro_master(m);
                    for (p, pin) in def.pins.iter().enumerate() {
                        if pin.dir != PinDir::Input || pin.class == macro3d_sram::PinClass::Clock {
                            continue;
                        }
                        let Some(&(net, six)) = pin_net_six.get(&(inst.0, p as u16)) else {
                            continue;
                        };
                        if net == clock_net {
                            continue;
                        }
                        endpoint_checks.push(EndpointCheck {
                            net,
                            six,
                            clk_inst: inst,
                            setup_ps: def.setup_ps,
                        });
                    }
                }
            }
        }
        StaContext {
            order,
            pin_net_six,
            endpoint_checks,
        }
    }
}

/// Selects the minimum-period engine of [`analyze_with`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StaMode {
    /// Legacy probe engine: 32-step binary search over the period
    /// window, one full arrival propagation per probe (~34 per
    /// analyze). Kept as the reference the parametric engine is
    /// equivalence-tested against.
    Probe,
    /// Parametric engine: one affine propagation plus a confirmation
    /// pass, min period in closed form (see [`crate::parametric`]).
    /// Agrees with [`StaMode::Probe`] to within
    /// [`crate::parametric::PROBE_RESOLUTION_PS`].
    #[default]
    Parametric,
}

/// Finds the maximum frequency and reports the critical path.
///
/// # Panics
///
/// Panics if the design has no timing endpoints (no registers, macros
/// or output ports).
pub fn analyze(input: &StaInput<'_>) -> TimingReport {
    analyze_par(input, &Parallelism::serial())
}

/// [`analyze`] with endpoint folds fanned out over `par` worker
/// threads, using the default engine ([`StaMode::Parametric`]). The
/// report is identical to the serial one for any thread count.
///
/// # Panics
///
/// Panics if the design has no timing endpoints (no registers, macros
/// or output ports).
pub fn analyze_par(input: &StaInput<'_>, par: &Parallelism) -> TimingReport {
    analyze_with(input, par, StaMode::default())
}

/// [`analyze_par`] with an explicit engine selection.
///
/// # Panics
///
/// Panics if the design has no timing endpoints (no registers, macros
/// or output ports).
pub fn analyze_with(input: &StaInput<'_>, par: &Parallelism, mode: StaMode) -> TimingReport {
    match mode {
        StaMode::Probe => analyze_probe(input, par),
        StaMode::Parametric => crate::parametric::analyze_parametric(input, par),
    }
}

/// The probe engine behind [`StaMode::Probe`].
fn analyze_probe(input: &StaInput<'_>, par: &Parallelism) -> TimingReport {
    // binary search the minimum feasible period
    let mut lo = 10.0f64;
    let mut hi = 20.0e6;
    let ctx = StaContext::build(input.design, input.constraints.clock_net);
    assert!(
        Propagation::run(input, &ctx, hi, par).has_endpoints,
        "design has no timing endpoints"
    );
    for _ in 0..32 {
        let mid = 0.5 * (lo + hi);
        if Propagation::run(input, &ctx, mid, par).worst_slack >= 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let min_period = hi;

    // trace the critical path at the feasibility boundary
    let prop = Propagation::run(input, &ctx, lo.max(10.0), par);
    let mut crit_nets = Vec::new();
    let mut stages = 0usize;
    let mut wl_um = 0.0;
    if let Some(mut net) = prop.worst_endpoint_net {
        loop {
            crit_nets.push(net);
            if let Some(r) = input.routed.and_then(|r| r.net(net)) {
                wl_um += r.wirelength_um();
            }
            match prop.pred[net.index()] {
                Some(p) => {
                    stages += 1;
                    net = p;
                }
                None => break,
            }
        }
    }

    TimingReport {
        min_period_ps: min_period,
        fclk_mhz: 1.0e6 / min_period,
        crit_path_nets: crit_nets,
        crit_path_wirelength_mm: wl_um / 1_000.0,
        crit_path_stages: stages,
        clock_tree_depth: input.clock.depth,
        clock_skew_ps: input.clock.skew_ps,
    }
}

/// Hold-check result (fast corner).
#[derive(Clone, Debug, PartialEq)]
pub struct HoldReport {
    /// Worst hold slack, ps (negative = violation).
    pub worst_slack_ps: f64,
    /// Number of violating endpoints.
    pub violations: usize,
    /// Violating endpoints: (register, data-pin index, shortfall ps).
    pub endpoints: Vec<(macro3d_netlist::InstId, u16, f64)>,
}

/// Hold analysis at the fast corner: earliest arrivals against the
/// hold requirement at every register data pin. Period-independent.
///
/// Clock skew is the aggressor here: a capture register whose clock
/// arrives later than the launching register's needs that much more
/// data-path delay.
pub fn check_hold(input: &StaInput<'_>) -> HoldReport {
    let design = input.design;
    let lib = design.library();
    let corner = Corner::Ff;
    let ctx = StaContext::build(design, input.constraints.clock_net);
    let nn = design.num_nets();
    let mut net_min = vec![f64::NAN; nn];

    let load_of = |net: NetId| -> f64 {
        input
            .parasitics
            .get(net.index())
            .map(|p| p.driver_load_ff)
            .unwrap_or(1.0)
    };

    // launches: FF Q at min clk->q; macro douts at access; input
    // ports at the virtual clock (the upstream tile has the same
    // insertion delay) plus a small guaranteed input-hold margin (its
    // outputs are registered, so they cannot change before clk->q)
    const INPUT_MIN_DELAY_PS: f64 = 25.0;
    for pid in design.port_ids() {
        let port = design.port(pid);
        if port.dir == PinDir::Input {
            if let Some(net) = port.net {
                net_min[net.index()] = input.clock.insertion_ps + INPUT_MIN_DELAY_PS;
            }
        }
    }
    for inst in design.inst_ids() {
        if !is_timing_endpoint(design, inst) {
            continue;
        }
        let clk = input.clock.arrival_ps[inst.index()];
        match design.inst(inst).master {
            Master::Cell(c) => {
                let cell = lib.cell(c);
                if !cell.is_sequential() {
                    continue;
                }
                let out = cell.output_pin();
                if let Some(qnet) = design.inst(inst).conns[out] {
                    let (d, _) = cell_arc_delay(cell, 0, 40.0, load_of(qnet), corner);
                    let arr = clk + d;
                    let slot = &mut net_min[qnet.index()];
                    if slot.is_nan() || arr < *slot {
                        *slot = arr;
                    }
                }
            }
            Master::Macro(m) => {
                let def = design.macro_master(m);
                let access = def.access_ps * corner.delay_derate();
                for (p, pin) in def.pins.iter().enumerate() {
                    if pin.dir != PinDir::Output {
                        continue;
                    }
                    if let Some(net) = design.inst(inst).conns[p] {
                        let arr = clk + access;
                        let slot = &mut net_min[net.index()];
                        if slot.is_nan() || arr < *slot {
                            *slot = arr;
                        }
                    }
                }
            }
        }
    }

    // min propagation (shortest arc, zero wire delay floor is the
    // Elmore to the nearest sink, conservatively taken as 0)
    for &inst in &ctx.order {
        let Master::Cell(c) = design.inst(inst).master else {
            continue;
        };
        let cell = lib.cell(c);
        let out = cell.output_pin();
        let Some(out_net) = design.inst(inst).conns[out] else {
            continue;
        };
        let load = load_of(out_net);
        let mut best = f64::NAN;
        for (arc_ix, arc) in cell.arcs.iter().enumerate() {
            let pin = arc.from_pin as u16;
            let Some(&(in_net, _)) = ctx.pin_net_six.get(&(inst.0, pin)) else {
                continue;
            };
            if net_min[in_net.index()].is_nan() {
                continue;
            }
            let (d, _) = cell_arc_delay(cell, arc_ix, 30.0, load, corner);
            let cand = net_min[in_net.index()] + d;
            if best.is_nan() || cand < best {
                best = cand;
            }
        }
        if !best.is_nan() {
            let slot = &mut net_min[out_net.index()];
            if slot.is_nan() || best < *slot {
                *slot = best;
            }
        }
    }

    // hold checks at FF D pins
    let mut worst = f64::INFINITY;
    let mut violations = 0;
    let mut endpoints = Vec::new();
    for inst in design.inst_ids() {
        let Master::Cell(c) = design.inst(inst).master else {
            continue;
        };
        let cell = lib.cell(c);
        if !cell.is_sequential() {
            continue;
        }
        let clk = input.clock.arrival_ps[inst.index()];
        for pin in cell.data_input_pins().collect::<Vec<_>>() {
            let Some(&(net, _)) = ctx.pin_net_six.get(&(inst.0, pin as u16)) else {
                continue;
            };
            if net_min[net.index()].is_nan() {
                continue;
            }
            let slack = net_min[net.index()] - (clk + cell.hold_ps);
            if slack < worst {
                worst = slack;
            }
            if slack < 0.0 {
                violations += 1;
                endpoints.push((inst, pin as u16, -slack));
            }
        }
    }
    HoldReport {
        worst_slack_ps: if worst.is_finite() { worst } else { 0.0 },
        violations,
        endpoints,
    }
}

/// One arrival-propagation pass at a fixed period.
struct Propagation {
    worst_slack: f64,
    worst_endpoint_net: Option<NetId>,
    pred: Vec<Option<NetId>>,
    has_endpoints: bool,
}

impl Propagation {
    fn run(input: &StaInput<'_>, ctx: &StaContext, period: f64, par: &Parallelism) -> Propagation {
        let design = input.design;
        let lib = design.library();
        let corner = input.corner;
        let nn = design.num_nets();

        // arrival/slew at each net's driver output; NAN = not driven yet
        let mut net_arr = vec![f64::NAN; nn];
        let mut net_slew = vec![50.0f64; nn];
        let mut pred: Vec<Option<NetId>> = vec![None; nn];

        let load_of = |net: NetId| -> f64 {
            input
                .parasitics
                .get(net.index())
                .map(|p| p.driver_load_ff)
                .unwrap_or(1.0)
        };
        let elmore = |net: NetId, six: usize| -> f64 {
            input
                .parasitics
                .get(net.index())
                .and_then(|p| p.elmore_ps.get(six))
                .copied()
                .unwrap_or(0.0)
        };

        // (net, sink_ix) for every instance input pin
        // arrival at a sink pin of a net
        let sink_arrival =
            |net: NetId, six: usize, net_arr: &[f64], net_slew: &[f64]| -> (f64, f64) {
                let e = elmore(net, six);
                (
                    net_arr[net.index()] + e,
                    wire_slew(net_slew[net.index()], e),
                )
            };

        // --- launch sources -------------------------------------------------
        for pid in design.port_ids() {
            let port = design.port(pid);
            if port.dir != PinDir::Input {
                continue;
            }
            let Some(net) = port.net else { continue };
            if net == input.constraints.clock_net {
                // clock enters here; handled via ClockArrivals
                net_arr[net.index()] = 0.0;
                continue;
            }
            // IO paths reference the virtual clock at the common
            // insertion delay (the abutting tile has the same tree)
            let launch = input.constraints.launch_frac(pid) * period + input.clock.insertion_ps;
            let e = net_arr[net.index()];
            if e.is_nan() || launch > e {
                net_arr[net.index()] = launch;
                net_slew[net.index()] = input.constraints.input_slew_ps;
            }
        }
        for inst in design.inst_ids() {
            if !is_timing_endpoint(design, inst) {
                continue;
            }
            let clk = input.clock.arrival_ps[inst.index()];
            match design.inst(inst).master {
                Master::Cell(c) => {
                    let cell = lib.cell(c);
                    if !cell.is_sequential() {
                        continue;
                    }
                    let out = cell.output_pin();
                    let Some(qnet) = design.inst(inst).conns[out] else {
                        continue;
                    };
                    let (d, s) = cell_arc_delay(cell, 0, 40.0, load_of(qnet), corner);
                    let arr = clk + d;
                    if net_arr[qnet.index()].is_nan() || arr > net_arr[qnet.index()] {
                        net_arr[qnet.index()] = arr;
                        net_slew[qnet.index()] = s;
                    }
                }
                Master::Macro(m) => {
                    let def = design.macro_master(m);
                    let access = def.access_ps * corner.delay_derate();
                    for (p, pin) in def.pins.iter().enumerate() {
                        if pin.dir != PinDir::Output {
                            continue;
                        }
                        if let Some(net) = design.inst(inst).conns[p] {
                            let arr = clk + access;
                            if net_arr[net.index()].is_nan() || arr > net_arr[net.index()] {
                                net_arr[net.index()] = arr;
                                net_slew[net.index()] = 60.0;
                            }
                        }
                    }
                }
            }
        }

        // --- combinational propagation --------------------------------------
        let pin_net_six = &ctx.pin_net_six;

        // batched locally: one registry add per propagation, nothing
        // atomic inside the serial topological walk
        let mut arcs_evaluated = 0u64;
        for &inst in &ctx.order {
            let Master::Cell(c) = design.inst(inst).master else {
                continue;
            };
            let cell = lib.cell(c);
            let out = cell.output_pin();
            let Some(out_net) = design.inst(inst).conns[out] else {
                continue;
            };
            let load = load_of(out_net);
            let mut best_arr = f64::NAN;
            let mut best_slew = 50.0;
            let mut best_pred = None;
            for (arc_ix, arc) in cell.arcs.iter().enumerate() {
                let pin = arc.from_pin as u16;
                let Some(&(in_net, six)) = pin_net_six.get(&(inst.0, pin)) else {
                    continue;
                };
                if net_arr[in_net.index()].is_nan() {
                    continue;
                }
                let (in_arr, in_slew) = sink_arrival(in_net, six as usize, &net_arr, &net_slew);
                let (d, s) = cell_arc_delay(cell, arc_ix, in_slew, load, corner);
                arcs_evaluated += 1;
                let cand = in_arr + d;
                if best_arr.is_nan() || cand > best_arr {
                    best_arr = cand;
                    best_slew = s;
                    best_pred = Some(in_net);
                }
            }
            if !best_arr.is_nan()
                && (net_arr[out_net.index()].is_nan() || best_arr > net_arr[out_net.index()])
            {
                net_arr[out_net.index()] = best_arr;
                net_slew[out_net.index()] = best_slew;
                pred[out_net.index()] = best_pred;
            }
        }

        // --- endpoint checks --------------------------------------------------
        let derate = corner.delay_derate();

        // Every register/macro setup check is independent given the
        // frozen arrival tables, so they fan out over the workers.
        // The reduction tracks (slack, check index) and breaks slack
        // ties toward the lower index — exactly the element a serial
        // first-strictly-worse scan would keep — so the result is
        // bit-identical for any thread count.
        #[derive(Clone, Copy)]
        struct WorstAcc {
            slack: f64,
            ix: usize,
            any: bool,
        }
        let better = |slack: f64, ix: usize, than: &WorstAcc| {
            slack < than.slack || (slack == than.slack && ix < than.ix)
        };
        let acc = parallel_fold(
            &ctx.endpoint_checks,
            par,
            WorstAcc {
                slack: f64::INFINITY,
                ix: usize::MAX,
                any: false,
            },
            |mut acc, ix, chk| {
                if net_arr[chk.net.index()].is_nan() {
                    return acc;
                }
                acc.any = true;
                let (arr, _) = sink_arrival(chk.net, chk.six as usize, &net_arr, &net_slew);
                let clk = input.clock.arrival_ps[chk.clk_inst.index()];
                let slack = (period + clk - chk.setup_ps * derate) - arr;
                if better(slack, ix, &acc) {
                    acc.slack = slack;
                    acc.ix = ix;
                }
                acc
            },
            |a, b| {
                let mut out = if better(b.slack, b.ix, &a) { b } else { a };
                out.any = a.any || b.any;
                out
            },
        );
        let mut worst = acc.slack;
        let mut worst_net = (acc.ix != usize::MAX).then(|| ctx.endpoint_checks[acc.ix].net);
        let mut has_endpoints = acc.any;

        let check = |arr: f64,
                     required: f64,
                     via_net: NetId,
                     worst: &mut f64,
                     worst_net: &mut Option<NetId>| {
            let slack = required - arr;
            if slack < *worst {
                *worst = slack;
                *worst_net = Some(via_net);
            }
        };

        // output-port checks are few and need per-port required-time
        // fractions; they stay serial after the fan-out
        for pid in design.port_ids() {
            let port = design.port(pid);
            if port.dir != PinDir::Output {
                continue;
            }
            let Some(net) = port.net else { continue };
            if net_arr[net.index()].is_nan() {
                continue;
            }
            has_endpoints = true;
            // the port must be one of the net's sinks; a port that is
            // not would silently be timed at sink 0's Elmore, so skip
            // it instead (unreachable through the public netlist API,
            // which keeps port.net and net.pins in lockstep)
            let Some(six) = crate::graph::sink_index_of(design, net, PinRef::Port(pid)) else {
                debug_assert!(
                    false,
                    "output port {pid:?} listed on net {net:?} but absent from its sinks"
                );
                continue;
            };
            let (arr, _) = sink_arrival(net, six, &net_arr, &net_slew);
            let required = input.constraints.required_frac(pid) * period + input.clock.insertion_ps;
            check(arr, required, net, &mut worst, &mut worst_net);
        }

        if !has_endpoints {
            worst = f64::INFINITY;
        }
        ARCS_EVALUATED.add(arcs_evaluated);
        PROPAGATIONS.inc();
        Propagation {
            worst_slack: worst,
            worst_endpoint_net: worst_net,
            pred,
            has_endpoints,
        }
    }
}

/// Timing arcs evaluated across all propagations (the probe engine
/// reruns propagation per probe point; the parametric engine counts
/// its passes and incremental cone evaluations here too).
pub(crate) static ARCS_EVALUATED: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("sta/arcs_evaluated");
/// Full arrival-time propagations executed (probe or parametric).
pub(crate) static PROPAGATIONS: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("sta/propagations");

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_netlist::Side;
    use macro3d_tech::{libgen::n28_library, CellClass};
    use std::sync::Arc;

    /// FF -> INV chain -> FF with explicit parasitics.
    fn reg2reg(chain: usize, wire_elmore_ps: f64) -> (Design, Vec<NetParasitics>, StaConstraints) {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let dff = lib.smallest(CellClass::Dff).expect("dff");
        let mut d = Design::new("t", lib);
        let clk_p = d.add_port("clk", PinDir::Input, None);
        let clk = d.add_net("clk");
        d.connect(clk, PinRef::Port(clk_p));
        let f0 = d.add_cell("f0", dff);
        let f1 = d.add_cell("f1", dff);
        d.connect(clk, PinRef::inst(f0, 1));
        d.connect(clk, PinRef::inst(f1, 1));
        // unused D of f0 from a port
        let dp = d.add_port("d", PinDir::Input, None);
        let dn = d.add_net("dn");
        d.connect(dn, PinRef::Port(dp));
        d.connect(dn, PinRef::inst(f0, 0));

        let mut prev = d.add_net("q0");
        d.connect(prev, PinRef::inst(f0, 2));
        for i in 0..chain {
            let c = d.add_cell(format!("c{i}"), inv);
            d.connect(prev, PinRef::inst(c, 0));
            prev = d.add_net(format!("w{i}"));
            d.connect(prev, PinRef::inst(c, 1));
        }
        d.connect(prev, PinRef::inst(f1, 0));

        let mut parasitics = vec![NetParasitics::default(); d.num_nets()];
        for n in d.net_ids() {
            let sinks = d.sinks(n).count();
            parasitics[n.index()] = NetParasitics {
                wire_cap_ff: 2.0,
                total_res_ohm: 100.0,
                elmore_ps: vec![wire_elmore_ps; sinks],
                driver_load_ff: 3.0,
            };
        }
        let c = StaConstraints::new(clk);
        (d, parasitics, c)
    }

    #[test]
    fn longer_chain_is_slower() {
        let run = |chain: usize| -> f64 {
            let (d, p, c) = reg2reg(chain, 5.0);
            let clock = ClockArrivals::ideal(&d);
            let input = StaInput {
                design: &d,
                parasitics: &p,
                routed: None,
                constraints: &c,
                clock: &clock,
                corner: Corner::Ss,
            };
            analyze(&input).min_period_ps
        };
        let p2 = run(2);
        let p10 = run(10);
        assert!(p10 > p2 + 100.0, "p2={p2} p10={p10}");
    }

    #[test]
    fn min_period_matches_hand_calc_roughly() {
        let (d, p, c) = reg2reg(1, 0.0);
        let clock = ClockArrivals::ideal(&d);
        let input = StaInput {
            design: &d,
            parasitics: &p,
            routed: None,
            constraints: &c,
            clock: &clock,
            corner: Corner::Tt,
        };
        let rep = analyze(&input);
        // ckq (~60+3kohm*3ff) + inv (~10+~15) + setup 35 ≈ 130ps
        assert!(
            rep.min_period_ps > 90.0 && rep.min_period_ps < 250.0,
            "period {}",
            rep.min_period_ps
        );
        assert!(rep.fclk_mhz > 3_000.0);
        assert_eq!(rep.crit_path_stages, 1);
    }

    #[test]
    fn wire_delay_slows_the_clock() {
        let run = |elmore: f64| -> f64 {
            let (d, p, c) = reg2reg(4, elmore);
            let clock = ClockArrivals::ideal(&d);
            let input = StaInput {
                design: &d,
                parasitics: &p,
                routed: None,
                constraints: &c,
                clock: &clock,
                corner: Corner::Ss,
            };
            analyze(&input).min_period_ps
        };
        assert!(run(100.0) > run(0.0) + 4.0 * 100.0 * 0.9);
    }

    #[test]
    fn half_cycle_port_doubles_budget_need() {
        // FF -> output port, once full-cycle once half-cycle
        let lib = Arc::new(n28_library(1.0));
        let dff = lib.smallest(CellClass::Dff).expect("dff");
        let mut d = Design::new("t", lib);
        let clk_p = d.add_port("clk", PinDir::Input, None);
        let clk = d.add_net("clk");
        d.connect(clk, PinRef::Port(clk_p));
        let f = d.add_cell("f", dff);
        d.connect(clk, PinRef::inst(f, 1));
        let dp = d.add_port("d", PinDir::Input, None);
        let dn = d.add_net("dn");
        d.connect(dn, PinRef::Port(dp));
        d.connect(dn, PinRef::inst(f, 0));
        let q = d.add_net("q");
        d.connect(q, PinRef::inst(f, 2));
        let po = d.add_port("out", PinDir::Output, Some(Side::North));
        d.connect(q, PinRef::Port(po));

        let mut parasitics = vec![NetParasitics::default(); d.num_nets()];
        for n in d.net_ids() {
            let sinks = d.sinks(n).count();
            parasitics[n.index()] = NetParasitics {
                wire_cap_ff: 2.0,
                total_res_ohm: 100.0,
                elmore_ps: vec![50.0; sinks],
                driver_load_ff: 5.0,
            };
        }
        let clock = ClockArrivals::ideal(&d);
        let mut c = StaConstraints::new(clk);
        let full = {
            let input = StaInput {
                design: &d,
                parasitics: &parasitics,
                routed: None,
                constraints: &c,
                clock: &clock,
                corner: Corner::Tt,
            };
            analyze(&input).min_period_ps
        };
        c.half_cycle_ports.insert(po);
        let half = {
            let input = StaInput {
                design: &d,
                parasitics: &parasitics,
                routed: None,
                constraints: &c,
                clock: &clock,
                corner: Corner::Tt,
            };
            analyze(&input).min_period_ps
        };
        assert!(
            (half / full - 2.0).abs() < 0.05,
            "half-cycle port should double the required period: {full} -> {half}"
        );
    }

    #[test]
    fn clock_skew_shifts_requirements() {
        let (d, p, c) = reg2reg(4, 10.0);
        let mut clock = ClockArrivals::ideal(&d);
        // find the capture FF (f1) and give it an early clock (negative
        // skew tightens the path)
        let f1 = d
            .inst_ids()
            .find(|&i| d.inst(i).name == "f1")
            .expect("f1 exists");
        let base = {
            let input = StaInput {
                design: &d,
                parasitics: &p,
                routed: None,
                constraints: &c,
                clock: &clock,
                corner: Corner::Tt,
            };
            analyze(&input).min_period_ps
        };
        clock.arrival_ps[f1.index()] = -80.0;
        let skewed = {
            let input = StaInput {
                design: &d,
                parasitics: &p,
                routed: None,
                constraints: &c,
                clock: &clock,
                corner: Corner::Tt,
            };
            analyze(&input).min_period_ps
        };
        assert!((skewed - base - 80.0).abs() < 2.0, "{base} -> {skewed}");
    }

    #[test]
    fn hold_passes_with_zero_skew_and_fails_with_late_capture_clock() {
        let (d, p, c) = reg2reg(1, 0.0);
        let mut clock = ClockArrivals::ideal(&d);
        let input = StaInput {
            design: &d,
            parasitics: &p,
            routed: None,
            constraints: &c,
            clock: &clock,
            corner: Corner::Ff,
        };
        let h = check_hold(&input);
        // ckq (~60ps min) easily beats the 5ps hold requirement
        assert!(h.worst_slack_ps > 0.0, "slack {}", h.worst_slack_ps);
        assert_eq!(h.violations, 0);

        // a capture clock arriving 500ps late breaks hold
        let f1 = d
            .inst_ids()
            .find(|&i| d.inst(i).name == "f1")
            .expect("f1 exists");
        clock.arrival_ps[f1.index()] = 500.0;
        let input = StaInput {
            design: &d,
            parasitics: &p,
            routed: None,
            constraints: &c,
            clock: &clock,
            corner: Corner::Ff,
        };
        let h = check_hold(&input);
        assert!(h.violations >= 1);
        assert!(h.worst_slack_ps < 0.0);
    }

    #[test]
    fn parallel_endpoint_checks_match_serial() {
        let (d, p, c) = reg2reg(8, 25.0);
        let clock = ClockArrivals::ideal(&d);
        let input = StaInput {
            design: &d,
            parasitics: &p,
            routed: None,
            constraints: &c,
            clock: &clock,
            corner: Corner::Ss,
        };
        let serial = analyze(&input);
        for threads in [2, 4] {
            let par = Parallelism::threads(threads).with_chunk_size(1);
            let got = analyze_par(&input, &par);
            assert_eq!(got.min_period_ps, serial.min_period_ps, "threads={threads}");
            assert_eq!(got.crit_path_nets, serial.crit_path_nets);
            assert_eq!(
                worst_slack_par(&input, 500.0, &par),
                worst_slack(&input, 500.0)
            );
        }
    }

    #[test]
    fn worst_slack_is_monotone_in_period() {
        let (d, p, c) = reg2reg(6, 20.0);
        let clock = ClockArrivals::ideal(&d);
        let input = StaInput {
            design: &d,
            parasitics: &p,
            routed: None,
            constraints: &c,
            clock: &clock,
            corner: Corner::Ss,
        };
        let s1 = worst_slack(&input, 300.0);
        let s2 = worst_slack(&input, 600.0);
        let s3 = worst_slack(&input, 1200.0);
        assert!(s1 < s2 && s2 < s3);
    }
}
