//! Parametric STA: affine arrival propagation and closed-form
//! minimum-period resolution.
//!
//! The probe path in [`crate::analysis`] binary-searches the minimum
//! feasible period with 32 full arrival propagations, yet every arc
//! delay, slew and Elmore term inside a propagation is
//! period-independent — the period only enters *affinely*, through
//! `launch_frac · T` at input ports and the endpoint required times.
//! This module therefore propagates arrivals as affine forms
//! `off + coeff · T` through the same topological walk (delays
//! computed exactly once) and solves each endpoint's binding period in
//! closed form: `slack(T) = (req_coeff − arr_coeff) · T + const ≥ 0`.
//!
//! ## The affine-max caveat and the confirmation contract
//!
//! A net merging fan-ins with *different* period coefficients has a
//! true arrival that is a max of affines — piecewise linear in `T`,
//! not affine. A pass picks max-winners by value at a comparison
//! period `t_cmp` (a *policy*); the resulting affine per net equals
//! the true arrival **at `t_cmp`** and lower-bounds the true max
//! everywhere else, so the closed-form solve of a pass is always a
//! lower bound on the true minimum period. Each pass records whether
//! any max comparison mixed coefficients:
//!
//! * **unmixed** — winner selection is period-independent, the single
//!   pass is globally exact, and the closed form yields the true
//!   minimum period after **1 propagation**;
//! * **mixed** — the solver iterates `t ← solve(pass at t)`
//!   (confirmation passes). The iteration is monotone increasing from
//!   below, and the first fixed point is exactly the true minimum
//!   period because the policy at `t` reproduces the true slack at
//!   `t`. Typical designs confirm in one extra pass; the loop is
//!   capped and never falls back to fixed probing.
//!
//! ## Incremental cone updates
//!
//! [`StaSession`] keeps the flattened `TimingGraph` and the last
//! converged pass. After an optimization step reports its touched
//! nets (loads or Elmore changed), `update` seeds a worklist with the
//! touched nets' sources, consumers and endpoints and re-evaluates
//! only that fan-out cone in topological order, stopping wherever a
//! recomputed value is bit-identical to the stored one. Structural
//! edits (new instances/nets) are detected via the graph's shape
//! snapshot and trigger a transparent rebuild + cold analysis.

use crate::analysis::{StaInput, TimingReport, ARCS_EVALUATED, PROPAGATIONS};
use crate::dcalc::{cell_arc_delay, wire_slew};
use crate::graph::{EndpointKind, TimingGraph, NO_NODE};
use macro3d_netlist::{Master, NetId};
use macro3d_par::{parallel_argmin, Parallelism};
use std::collections::BTreeSet;

/// Lower edge of the period search window, ps (shared with the probe
/// path's binary search).
pub(crate) const T_LO_PS: f64 = 10.0;
/// Upper edge of the period search window, ps.
pub(crate) const T_HI_PS: f64 = 20.0e6;
/// Grid resolution of the probe path's 32-step binary search over
/// `[T_LO_PS, T_HI_PS]` — the tolerance within which the parametric
/// and probe minimum periods agree (the parametric result is exact;
/// the probe result is the smallest feasible grid point above it).
pub const PROBE_RESOLUTION_PS: f64 = (T_HI_PS - T_LO_PS) / 4_294_967_296.0;

/// Relative tolerance of the confirmation iteration.
const REFINE_TOL: f64 = 1e-9;
/// Confirmation-pass cap (mixed designs converge in 1–2 passes; the
/// cap only bounds adversarial cases and keeps the result a valid
/// lower bound).
const MAX_REFINE: usize = 24;

/// An arrival that is affine in the clock period: `off + coeff · T`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Affine {
    off: f64,
    coeff: f64,
}

impl Affine {
    /// "Not driven yet" marker (the probe path's NAN arrival).
    const UNSET: Affine = Affine {
        off: f64::NAN,
        coeff: 0.0,
    };

    #[inline]
    fn at(self, t: f64) -> f64 {
        self.off + self.coeff * t
    }

    #[inline]
    fn is_unset(self) -> bool {
        self.off.is_nan()
    }
}

/// Exact equality including the unset state (NAN offsets compare
/// equal to each other here).
#[inline]
fn same_affine(a: Affine, b: Affine) -> bool {
    (a.is_unset() && b.is_unset()) || (a.off == b.off && a.coeff == b.coeff)
}

/// Binding period of one endpoint given its affine slack
/// `slope · T + konst`: the smallest `T` with non-negative slack.
/// `NEG_INFINITY` = never binds, `INFINITY` = infeasible at any
/// period (a slope-free deficit, e.g. a half-cycle input feeding a
/// half-cycle output through too much logic).
#[inline]
fn solve_t_bound(slope: f64, konst: f64) -> f64 {
    if slope > 0.0 {
        -konst / slope
    } else if konst >= 0.0 {
        f64::NEG_INFINITY
    } else {
        f64::INFINITY
    }
}

#[inline]
fn clamp_t(t: f64) -> f64 {
    t.clamp(T_LO_PS, T_HI_PS)
}

/// One converged parametric pass: per-net affine arrivals/slews/preds
/// and per-endpoint affine slacks, all valid for the policy chosen at
/// `t_cmp`.
#[derive(Clone)]
pub(crate) struct ParamState {
    arr: Vec<Affine>,
    slew: Vec<f64>,
    pred: Vec<Option<NetId>>,
    /// Per endpoint: slack slope (`req_coeff − arr_coeff`); NAN =
    /// endpoint not driven.
    ep_slope: Vec<f64>,
    /// Per endpoint: slack constant term.
    ep_const: Vec<f64>,
    /// Per endpoint: binding period from [`solve_t_bound`].
    t_bound: Vec<f64>,
    /// Comparison period the max-winners were chosen at.
    t_cmp: f64,
    /// True when any max comparison involved differing coefficients
    /// (winner selection may depend on the period).
    mixed: bool,
    /// True when at least one endpoint is driven.
    has_endpoints: bool,
}

/// Borrowed context for one pass / cone update.
struct PassCtx<'a, 'b> {
    input: &'a StaInput<'b>,
    graph: &'a TimingGraph,
    t_cmp: f64,
}

impl PassCtx<'_, '_> {
    #[inline]
    fn load_of(&self, net: NetId) -> f64 {
        self.input
            .parasitics
            .get(net.index())
            .map(|p| p.driver_load_ff)
            .unwrap_or(1.0)
    }

    #[inline]
    fn elmore(&self, net: NetId, six: usize) -> f64 {
        self.input
            .parasitics
            .get(net.index())
            .and_then(|p| p.elmore_ps.get(six))
            .copied()
            .unwrap_or(0.0)
    }

    /// Max-compare `cand` against `best` at `t_cmp`, flagging mixed
    /// coefficients. Strict comparison: ties keep the incumbent,
    /// matching the probe pass's serial scan.
    #[inline]
    fn better(&self, cand: Affine, best: Affine, mixed: &mut bool) -> bool {
        if best.is_unset() {
            return true;
        }
        if cand.coeff != best.coeff {
            *mixed = true;
        }
        cand.at(self.t_cmp) > best.at(self.t_cmp)
    }

    /// The launch-sourced arrival of a net (input ports, then FF Q /
    /// macro outputs — the probe pass's stage order), recomputed from
    /// the design so incremental updates pick up resized drivers.
    fn launch_value(&self, net: NetId, mixed: &mut bool) -> (Affine, f64, Option<NetId>) {
        let design = self.input.design;
        let corner = self.input.corner;
        if net == self.graph.clock_net && self.graph.clock_from_port {
            // clock enters here; handled via ClockArrivals
            return (
                Affine {
                    off: 0.0,
                    coeff: 0.0,
                },
                50.0,
                None,
            );
        }
        let mut cur = Affine::UNSET;
        let mut cur_slew = 50.0;
        for l in self.graph.port_launches_of(net) {
            // IO paths reference the virtual clock at the common
            // insertion delay (the abutting tile has the same tree)
            let cand = Affine {
                off: self.input.clock.insertion_ps,
                coeff: self.input.constraints.launch_frac(l.port),
            };
            if self.better(cand, cur, mixed) {
                cur = cand;
                cur_slew = self.input.constraints.input_slew_ps;
            }
        }
        for l in self.graph.reg_launches_of(net) {
            let clk = self.input.clock.arrival_ps[l.inst.index()];
            let (cand, s) = if l.is_macro {
                let Master::Macro(m) = design.inst(l.inst).master else {
                    continue;
                };
                let access = design.macro_master(m).access_ps * corner.delay_derate();
                (
                    Affine {
                        off: clk + access,
                        coeff: 0.0,
                    },
                    60.0,
                )
            } else {
                let Master::Cell(c) = design.inst(l.inst).master else {
                    continue;
                };
                let (d, s) =
                    cell_arc_delay(design.library().cell(c), 0, 40.0, self.load_of(net), corner);
                (
                    Affine {
                        off: clk + d,
                        coeff: 0.0,
                    },
                    s,
                )
            };
            if self.better(cand, cur, mixed) {
                cur = cand;
                cur_slew = s;
            }
        }
        (cur, cur_slew, None)
    }

    /// Re-evaluates one node's output net from scratch: launch
    /// baseline, then the max over its arcs.
    fn eval_node(
        &self,
        node_ix: usize,
        arr: &[Affine],
        slew: &[f64],
        mixed: &mut bool,
        arcs_evaluated: &mut u64,
    ) -> (Affine, f64, Option<NetId>) {
        let node = &self.graph.nodes[node_ix];
        let design = self.input.design;
        let (mut best, mut best_slew, mut best_pred) = self.launch_value(node.out_net, mixed);
        let Master::Cell(c) = design.inst(node.inst).master else {
            return (best, best_slew, best_pred);
        };
        // masters are re-read per evaluation: drive variants of a
        // class share pin/arc structure, so in-place sizing only
        // changes the LUTs, never the graph
        let cell = design.library().cell(c);
        let load = self.load_of(node.out_net);
        for arc in self.graph.node_arcs(node) {
            let in_arr = arr[arc.in_net.index()];
            if in_arr.is_unset() {
                continue;
            }
            let e = self.elmore(arc.in_net, arc.six as usize);
            let in_slew = wire_slew(slew[arc.in_net.index()], e);
            let (d, s) =
                cell_arc_delay(cell, arc.arc_ix as usize, in_slew, load, self.input.corner);
            *arcs_evaluated += 1;
            let cand = Affine {
                off: in_arr.off + e + d,
                coeff: in_arr.coeff,
            };
            if self.better(cand, best, mixed) {
                best = cand;
                best_slew = s;
                best_pred = Some(arc.in_net);
            }
        }
        (best, best_slew, best_pred)
    }

    /// Affine slack pieces `(slope, konst)` of one endpoint, or NANs
    /// when its net is not driven.
    fn solve_endpoint(&self, ep_ix: usize, arr: &[Affine]) -> (f64, f64) {
        let ep = &self.graph.endpoints[ep_ix];
        let a = arr[ep.net.index()];
        if a.is_unset() {
            return (f64::NAN, f64::NAN);
        }
        let a_off = a.off + self.elmore(ep.net, ep.six as usize);
        let (req_coeff, req_const) = match ep.kind {
            EndpointKind::Reg { clk_inst, setup_ps } => {
                let clk = self.input.clock.arrival_ps[clk_inst.index()];
                (1.0, clk - setup_ps * self.input.corner.delay_derate())
            }
            EndpointKind::Port { port } => (
                self.input.constraints.required_frac(port),
                self.input.clock.insertion_ps,
            ),
        };
        (req_coeff - a.coeff, req_const - a_off)
    }
}

/// One full parametric propagation with winners chosen at `t_cmp`.
fn full_pass(input: &StaInput<'_>, graph: &TimingGraph, t_cmp: f64) -> ParamState {
    let nn = input.design.num_nets();
    let ne = graph.endpoints.len();
    let mut st = ParamState {
        arr: vec![Affine::UNSET; nn],
        slew: vec![50.0; nn],
        pred: vec![None; nn],
        ep_slope: vec![f64::NAN; ne],
        ep_const: vec![f64::NAN; ne],
        t_bound: vec![f64::NAN; ne],
        t_cmp,
        mixed: false,
        has_endpoints: false,
    };
    let ctx = PassCtx {
        input,
        graph,
        t_cmp,
    };
    let mut mixed = false;
    let mut arcs = 0u64;
    // launch stage (covers launch-only nets; node-driven nets are
    // overwritten below from the same launch baseline)
    if graph.clock_from_port {
        st.arr[graph.clock_net.index()] = Affine {
            off: 0.0,
            coeff: 0.0,
        };
    }
    for l in &graph.port_launches {
        let (a, s, _) = ctx.launch_value(l.net, &mut mixed);
        st.arr[l.net.index()] = a;
        st.slew[l.net.index()] = s;
    }
    for l in &graph.reg_launches {
        let (a, s, _) = ctx.launch_value(l.net, &mut mixed);
        st.arr[l.net.index()] = a;
        st.slew[l.net.index()] = s;
    }
    // combinational walk
    for ix in 0..graph.nodes.len() {
        let (a, s, p) = ctx.eval_node(ix, &st.arr, &st.slew, &mut mixed, &mut arcs);
        let out = graph.nodes[ix].out_net.index();
        st.arr[out] = a;
        st.slew[out] = s;
        st.pred[out] = p;
    }
    // endpoint slacks in closed form
    for e in 0..ne {
        let (slope, konst) = ctx.solve_endpoint(e, &st.arr);
        st.ep_slope[e] = slope;
        st.ep_const[e] = konst;
        st.t_bound[e] = if slope.is_nan() {
            f64::NAN
        } else {
            solve_t_bound(slope, konst)
        };
        st.has_endpoints |= !slope.is_nan();
    }
    st.mixed = mixed;
    ARCS_EVALUATED.add(arcs);
    PROPAGATIONS.inc();
    st
}

/// The closed-form solve of one pass: the largest binding period over
/// all endpoints (a lower bound on the true minimum period; exact
/// when the pass was unmixed or `t_cmp` already sits at the result).
fn t_star(st: &ParamState, par: &Parallelism) -> f64 {
    match parallel_argmin(&st.t_bound, par, |_, &tb| (!tb.is_nan()).then_some(-tb)) {
        Some((_, k)) => -k,
        None => f64::NEG_INFINITY,
    }
}

/// Confirmation iteration for mixed passes: `t ← solve(pass at t)`,
/// monotone increasing from below; the first fixed point is the true
/// minimum period.
fn refine(
    input: &StaInput<'_>,
    graph: &TimingGraph,
    mut st: ParamState,
    mut t: f64,
    par: &Parallelism,
) -> (ParamState, f64) {
    if !st.mixed {
        return (st, t);
    }
    for _ in 0..MAX_REFINE {
        let tol = REFINE_TOL * t.abs().max(1.0);
        if (t - st.t_cmp).abs() <= tol {
            break;
        }
        st = full_pass(input, graph, t);
        let t2 = clamp_t(t_star(&st, par));
        if t2 <= t + tol {
            // the policy at t reproduces the true slack at t, which
            // is non-negative here, and t was already a lower bound
            break;
        }
        t = t2;
    }
    (st, t)
}

/// Cold parametric solve: one pass at the window top, closed-form
/// solve, then the confirmation iteration when the pass was mixed.
///
/// # Panics
///
/// Panics if the design has no timing endpoints, matching the probe
/// path.
fn solve_min_period(
    input: &StaInput<'_>,
    graph: &TimingGraph,
    par: &Parallelism,
) -> (ParamState, f64) {
    let st = full_pass(input, graph, T_HI_PS);
    assert!(st.has_endpoints, "design has no timing endpoints");
    let t = clamp_t(t_star(&st, par));
    refine(input, graph, st, t, par)
}

/// Builds the [`TimingReport`] from a converged state: the worst
/// endpoint is selected by affine slack just below the solved period
/// (the probe path's trace point), ties toward the earlier endpoint.
fn report_from(
    input: &StaInput<'_>,
    graph: &TimingGraph,
    st: &ParamState,
    t_final: f64,
    par: &Parallelism,
) -> TimingReport {
    let t_trace = (t_final - PROBE_RESOLUTION_PS).max(T_LO_PS);
    let worst = parallel_argmin(&graph.endpoints, par, |e, _| {
        let slope = st.ep_slope[e];
        (!slope.is_nan()).then(|| slope * t_trace + st.ep_const[e])
    });
    let mut crit_nets = Vec::new();
    let mut stages = 0usize;
    let mut wl_um = 0.0;
    if let Some((ix, _)) = worst {
        let mut net = graph.endpoints[ix].net;
        loop {
            crit_nets.push(net);
            if let Some(r) = input.routed.and_then(|r| r.net(net)) {
                wl_um += r.wirelength_um();
            }
            match st.pred[net.index()] {
                Some(p) => {
                    stages += 1;
                    net = p;
                }
                None => break,
            }
        }
    }
    TimingReport {
        min_period_ps: t_final,
        fclk_mhz: 1.0e6 / t_final,
        crit_path_nets: crit_nets,
        crit_path_wirelength_mm: wl_um / 1_000.0,
        crit_path_stages: stages,
        clock_tree_depth: input.clock.depth,
        clock_skew_ps: input.clock.skew_ps,
    }
}

/// One-shot parametric analysis (builds a throwaway session).
pub(crate) fn analyze_parametric(input: &StaInput<'_>, par: &Parallelism) -> TimingReport {
    StaSession::new(input).analyze(input, par)
}

/// An incremental parametric analysis session.
///
/// Owns the flattened `TimingGraph` and the last converged pass so
/// the sizing loops can re-time only the fan-out cone of the nets an
/// optimization step touched. In-place resizing needs no rebuild;
/// structural edits are detected and trigger a cold re-analysis.
///
/// `Clone` deep-copies the graph and converged state, so a session
/// snapshotted at a flow-stage boundary can be resumed by a later run
/// without disturbing the original — the stage-reuse machinery in
/// `macro3d-core` relies on this.
#[derive(Clone)]
pub struct StaSession {
    graph: TimingGraph,
    state: Option<(ParamState, f64)>,
}

impl StaSession {
    /// Builds the timing graph for the design in `input`.
    pub fn new(input: &StaInput<'_>) -> StaSession {
        StaSession {
            graph: TimingGraph::build(input.design, input.constraints),
            state: None,
        }
    }

    /// Full (cold) parametric analysis; rebuilds the graph first when
    /// the design changed shape.
    ///
    /// # Panics
    ///
    /// Panics if the design has no timing endpoints.
    pub fn analyze(&mut self, input: &StaInput<'_>, par: &Parallelism) -> TimingReport {
        if self.graph.is_stale(input.design) {
            self.graph = TimingGraph::build(input.design, input.constraints);
        }
        self.state = None;
        let (st, t) = solve_min_period(input, &self.graph, par);
        let rep = report_from(input, &self.graph, &st, t, par);
        self.state = Some((st, t));
        rep
    }

    /// Re-analyzes after an optimization step changed the loads or
    /// Elmore delays of `touched` nets (e.g. the return of
    /// [`crate::opt::apply_sizing_to_parasitics`]): re-evaluates only
    /// the touched nets' sources, consumers and downstream cone,
    /// stopping wherever a recomputed value is bit-identical. Falls
    /// back to [`StaSession::analyze`] when the design changed shape
    /// or no converged state exists yet.
    pub fn update(
        &mut self,
        input: &StaInput<'_>,
        touched: &[NetId],
        par: &Parallelism,
    ) -> TimingReport {
        if self.graph.is_stale(input.design) {
            return self.analyze(input, par);
        }
        let Some((mut st, _)) = self.state.take() else {
            return self.analyze(input, par);
        };
        let graph = &self.graph;
        let ctx = PassCtx {
            input,
            graph,
            t_cmp: st.t_cmp,
        };
        let mut mixed = st.mixed;
        let mut arcs = 0u64;
        let mut reevaled = 0u64;
        // worklist keyed by topological node index, so every node is
        // re-evaluated at most once, after all its dirty predecessors
        let mut dirty_nodes: BTreeSet<u32> = BTreeSet::new();
        let mut dirty_eps: BTreeSet<u32> = BTreeSet::new();
        for &net in touched {
            // endpoints and consumers read the net's Elmore terms;
            // its driver (node or launch) reads its load
            dirty_eps.extend(graph.endpoints_of(net).iter().copied());
            dirty_nodes.extend(graph.consumers(net).iter().copied());
            let nd = graph.driver_node_of_net[net.index()];
            if nd != NO_NODE {
                dirty_nodes.insert(nd);
            } else {
                let (a, s, p) = ctx.launch_value(net, &mut mixed);
                reevaled += 1;
                let ix = net.index();
                if !same_affine(a, st.arr[ix]) || s != st.slew[ix] {
                    st.arr[ix] = a;
                    st.slew[ix] = s;
                    st.pred[ix] = p;
                    dirty_nodes.extend(graph.consumers(net).iter().copied());
                    dirty_eps.extend(graph.endpoints_of(net).iter().copied());
                }
            }
        }
        while let Some(node_ix) = dirty_nodes.pop_first() {
            let (a, s, p) =
                ctx.eval_node(node_ix as usize, &st.arr, &st.slew, &mut mixed, &mut arcs);
            reevaled += 1;
            let out = graph.nodes[node_ix as usize].out_net;
            let ix = out.index();
            let changed = !same_affine(a, st.arr[ix]) || s != st.slew[ix];
            st.arr[ix] = a;
            st.slew[ix] = s;
            st.pred[ix] = p;
            if changed {
                dirty_nodes.extend(graph.consumers(out).iter().copied());
                dirty_eps.extend(graph.endpoints_of(out).iter().copied());
            }
        }
        for &e in &dirty_eps {
            let (slope, konst) = ctx.solve_endpoint(e as usize, &st.arr);
            st.ep_slope[e as usize] = slope;
            st.ep_const[e as usize] = konst;
            st.t_bound[e as usize] = if slope.is_nan() {
                f64::NAN
            } else {
                solve_t_bound(slope, konst)
            };
            st.has_endpoints |= !slope.is_nan();
        }
        st.mixed = mixed;
        CONE_NETS.record(reevaled);
        INCREMENTAL_UPDATES.inc();
        ARCS_EVALUATED.add(arcs);
        let t = clamp_t(t_star(&st, par));
        let (st, t) = refine(input, graph, st, t, par);
        let rep = report_from(input, graph, &st, t, par);
        self.state = Some((st, t));
        rep
    }
}

/// Nets re-evaluated per incremental cone update (the probe path
/// would have re-propagated every net, 34 times).
static CONE_NETS: macro3d_obs::SiteHistogram = macro3d_obs::SiteHistogram::new("sta/cone_nets");
/// Incremental session updates served from a cone walk.
static INCREMENTAL_UPDATES: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("sta/incremental_updates");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_eval_and_unset() {
        let a = Affine {
            off: 100.0,
            coeff: 0.5,
        };
        assert_eq!(a.at(200.0), 200.0);
        assert!(Affine::UNSET.is_unset());
        assert!(same_affine(Affine::UNSET, Affine::UNSET));
        assert!(!same_affine(a, Affine::UNSET));
        assert!(same_affine(a, a));
    }

    #[test]
    fn t_bound_closed_form() {
        // slack(T) = 0.5·T − 100 ⇒ binds at 200
        assert_eq!(solve_t_bound(0.5, -100.0), 200.0);
        // positive slack with no slope never binds
        assert_eq!(solve_t_bound(0.0, 5.0), f64::NEG_INFINITY);
        // deficit with no (or negative) slope is infeasible at any T
        assert_eq!(solve_t_bound(0.0, -5.0), f64::INFINITY);
        assert_eq!(solve_t_bound(-0.5, -5.0), f64::INFINITY);
        // negative slope but already non-negative: never binds
        assert_eq!(solve_t_bound(-0.5, 5.0), f64::NEG_INFINITY);
    }

    #[test]
    fn clamp_matches_probe_window() {
        assert_eq!(clamp_t(f64::NEG_INFINITY), T_LO_PS);
        assert_eq!(clamp_t(f64::INFINITY), T_HI_PS);
        assert_eq!(clamp_t(500.0), 500.0);
    }
}
