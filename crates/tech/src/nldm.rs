//! Non-linear delay model (NLDM) lookup tables.
//!
//! Commercial `.lib` files characterise cell delay and output slew as
//! 2-D tables indexed by input slew and output load. This module
//! implements the table format with bilinear interpolation inside the
//! characterised region and linear extrapolation outside it — the same
//! behaviour sign-off timers use.

use std::fmt;

/// A 2-D lookup table over (input slew in ps, output load in fF).
///
/// # Examples
///
/// ```
/// use macro3d_tech::Lut2;
///
/// let lut = Lut2::from_fn(
///     vec![10.0, 100.0],
///     vec![1.0, 10.0],
///     |slew, load| 5.0 + 0.1 * slew + 2.0 * load,
/// );
/// // Exact at the grid points, interpolated in between.
/// assert!((lut.eval(10.0, 1.0) - 8.0).abs() < 1e-9);
/// assert!((lut.eval(55.0, 5.5) - (5.0 + 5.5 + 11.0)).abs() < 1e-9);
/// ```
#[derive(Clone, PartialEq)]
pub struct Lut2 {
    slew_axis: Vec<f64>,
    load_axis: Vec<f64>,
    /// Row-major: `values[slew_ix * load_axis.len() + load_ix]`.
    values: Vec<f64>,
}

impl Lut2 {
    /// Creates a table from explicit axes and row-major values.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty or not strictly increasing, or
    /// if `values.len() != slew_axis.len() * load_axis.len()`.
    pub fn new(slew_axis: Vec<f64>, load_axis: Vec<f64>, values: Vec<f64>) -> Self {
        assert!(
            !slew_axis.is_empty() && !load_axis.is_empty(),
            "axes must be non-empty"
        );
        assert!(
            slew_axis.windows(2).all(|w| w[0] < w[1]),
            "slew axis must be strictly increasing"
        );
        assert!(
            load_axis.windows(2).all(|w| w[0] < w[1]),
            "load axis must be strictly increasing"
        );
        assert_eq!(
            values.len(),
            slew_axis.len() * load_axis.len(),
            "value count must match axis product"
        );
        Lut2 {
            slew_axis,
            load_axis,
            values,
        }
    }

    /// Characterises a table by sampling `f(slew, load)` at the grid
    /// points — how [`crate::libgen`] builds the synthetic library.
    pub fn from_fn(slew_axis: Vec<f64>, load_axis: Vec<f64>, f: impl Fn(f64, f64) -> f64) -> Self {
        let mut values = Vec::with_capacity(slew_axis.len() * load_axis.len());
        for &s in &slew_axis {
            for &l in &load_axis {
                values.push(f(s, l));
            }
        }
        Lut2::new(slew_axis, load_axis, values)
    }

    /// A constant (load/slew-independent) table.
    pub fn constant(value: f64) -> Self {
        Lut2::new(vec![0.0], vec![0.0], vec![value])
    }

    /// Interpolated value at (`slew`, `load`), extrapolating linearly
    /// outside the characterised region.
    pub fn eval(&self, slew: f64, load: f64) -> f64 {
        let (si, st) = segment(&self.slew_axis, slew);
        let (li, lt) = segment(&self.load_axis, load);
        let nl = self.load_axis.len();
        let v = |s: usize, l: usize| self.values[s * nl + l];
        if self.slew_axis.len() == 1 && nl == 1 {
            return v(0, 0);
        }
        if self.slew_axis.len() == 1 {
            return lerp(v(0, li), v(0, li + 1), lt);
        }
        if nl == 1 {
            return lerp(v(si, 0), v(si + 1, 0), st);
        }
        let lo = lerp(v(si, li), v(si, li + 1), lt);
        let hi = lerp(v(si + 1, li), v(si + 1, li + 1), lt);
        lerp(lo, hi, st)
    }

    /// The slew axis.
    pub fn slew_axis(&self) -> &[f64] {
        &self.slew_axis
    }

    /// The load axis.
    pub fn load_axis(&self) -> &[f64] {
        &self.load_axis
    }
}

impl fmt::Debug for Lut2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Lut2({}x{} [{:.1}..{:.1}]ps x [{:.1}..{:.1}]fF)",
            self.slew_axis.len(),
            self.load_axis.len(),
            self.slew_axis.first().copied().unwrap_or(0.0),
            self.slew_axis.last().copied().unwrap_or(0.0),
            self.load_axis.first().copied().unwrap_or(0.0),
            self.load_axis.last().copied().unwrap_or(0.0),
        )
    }
}

#[inline]
fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Finds the segment index and (possibly out-of-[0,1]) parameter for
/// interpolation/extrapolation along an axis.
fn segment(axis: &[f64], x: f64) -> (usize, f64) {
    if axis.len() == 1 {
        return (0, 0.0);
    }
    // clamp to the outermost segments; t may exceed [0,1] => extrapolate
    let mut i = match axis.partition_point(|&a| a <= x) {
        0 => 0,
        p => p - 1,
    };
    if i >= axis.len() - 1 {
        i = axis.len() - 2;
    }
    let t = (x - axis[i]) / (axis[i + 1] - axis[i]);
    (i, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_lut() -> Lut2 {
        Lut2::from_fn(
            vec![10.0, 50.0, 200.0],
            vec![1.0, 4.0, 16.0, 64.0],
            |s, l| 3.0 + 0.05 * s + 1.5 * l,
        )
    }

    #[test]
    fn exact_at_grid_points() {
        let lut = linear_lut();
        for &s in lut.slew_axis().to_vec().iter() {
            for &l in lut.load_axis().to_vec().iter() {
                assert!((lut.eval(s, l) - (3.0 + 0.05 * s + 1.5 * l)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn bilinear_reproduces_linear_function() {
        let lut = linear_lut();
        // interior, off-grid
        assert!((lut.eval(30.0, 10.0) - (3.0 + 1.5 + 15.0)).abs() < 1e-9);
    }

    #[test]
    fn extrapolates_linearly() {
        let lut = linear_lut();
        assert!((lut.eval(400.0, 128.0) - (3.0 + 20.0 + 192.0)).abs() < 1e-9);
        assert!((lut.eval(0.0, 0.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn constant_table() {
        let lut = Lut2::constant(7.5);
        assert_eq!(lut.eval(123.0, 456.0), 7.5);
    }

    #[test]
    fn degenerate_axes() {
        let lut = Lut2::from_fn(vec![10.0], vec![1.0, 2.0], |_, l| l * 2.0);
        assert!((lut.eval(99.0, 1.5) - 3.0).abs() < 1e-9);
        let lut = Lut2::from_fn(vec![10.0, 20.0], vec![1.0], |s, _| s);
        assert!((lut.eval(15.0, 99.0) - 15.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_axis_panics() {
        let _ = Lut2::new(vec![10.0, 5.0], vec![1.0], vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "value count")]
    fn wrong_value_count_panics() {
        let _ = Lut2::new(vec![1.0, 2.0], vec![1.0], vec![0.0]);
    }
}
