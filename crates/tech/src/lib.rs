#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Synthetic 28 nm-class technology substrate for the Macro-3D
//! reproduction.
//!
//! The original paper uses a commercial 28 nm high-κ metal-gate planar
//! technology with Cadence tools. That PDK is proprietary, so this
//! crate re-creates the pieces the physical-design flows actually
//! consume:
//!
//! * [`stack`] — back-end-of-line (BEOL) metal stacks: per-layer
//!   preferred direction, track pitch and RC, plus inter-layer vias.
//! * [`f2f`] — the face-to-face bond spec (1 µm minimum pitch,
//!   0.5 × 0.5 µm bump, 0.17 µm height, 44 mΩ / 1.0 fF per bump —
//!   the paper's Sec. V-2 numbers).
//! * [`combined`] — the paper's core trick: a *combined* BEOL that
//!   presents both dies' metal stacks (macro-die layers suffixed
//!   `_MD`) plus the F2F via layer to an unmodified 2D router, and the
//!   inverse mapping used for die separation.
//! * [`nldm`] — non-linear delay model lookup tables (input slew ×
//!   output load), the format commercial libraries use.
//! * [`cell`] / [`libgen`] — a synthetic standard-cell library with
//!   NLDM arcs, pin capacitances, leakage and internal energy,
//!   generated from analytic 28 nm-class scaling rules.
//! * [`corner`] — process corners (timing signed off at SS, power
//!   reported at TT, as in the paper).
//!
//! # Examples
//!
//! ```
//! use macro3d_tech::{libgen, stack, CombinedBeol, F2fSpec};
//!
//! let logic = stack::n28_stack(6, stack::DieRole::Logic);
//! let macro_die = stack::n28_stack(4, stack::DieRole::Macro);
//! let combined = CombinedBeol::build(&logic, &macro_die, &F2fSpec::hybrid_bond_n28());
//! assert_eq!(combined.stack().num_layers(), 10);
//! assert_eq!(combined.stack().layer(6).name, "M1_MD");
//!
//! let lib = libgen::n28_library(1.0);
//! assert!(lib.cell_by_name("INV_X1").is_some());
//! ```

pub mod cell;
pub mod combined;
pub mod corner;
pub mod f2f;
pub mod lef;
pub mod liberty;
pub mod libgen;
pub mod nldm;
pub mod stack;

pub use cell::{CellClass, CellLibrary, CellPin, LibCell, LibCellId, PinDir, TimingArc};
pub use combined::{CombinedBeol, LayerOrigin};
pub use corner::Corner;
pub use f2f::F2fSpec;
pub use nldm::Lut2;
pub use stack::{DieRole, Direction, LayerId, MetalStack, RoutingLayer, ViaDef};
