//! Face-to-face bond (hybrid wafer-to-wafer bonding) specification.

use macro3d_geom::{Dbu, Size};

/// Geometry and parasitics of one F2F bump / hybrid-bond via.
///
/// Defaults follow the paper's Sec. V-2 setup: minimum pitch 1 µm,
/// bump size 0.5 × 0.5 µm, height 0.17 µm; extraction at the typical
/// corner gives a mean resistance of 44 mΩ and capacitance of 1.0 fF
/// per via.
///
/// # Examples
///
/// ```
/// use macro3d_tech::F2fSpec;
///
/// let f2f = F2fSpec::hybrid_bond_n28();
/// assert_eq!(f2f.pitch.to_um(), 1.0);
/// assert!((f2f.resistance - 0.044).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct F2fSpec {
    /// Minimum bump pitch.
    pub pitch: Dbu,
    /// Bump extent.
    pub size: Size,
    /// Bond height (distance between the two topmost metals).
    pub height: Dbu,
    /// Resistance per bump, Ω.
    pub resistance: f64,
    /// Capacitance per bump, fF.
    pub capacitance: f64,
}

impl F2fSpec {
    /// The paper's hybrid wafer-to-wafer bond in the 28 nm flow.
    pub fn hybrid_bond_n28() -> Self {
        F2fSpec {
            pitch: Dbu::from_um(1.0),
            size: Size::from_um(0.5, 0.5),
            height: Dbu::from_um(0.17),
            resistance: 0.044,
            capacitance: 1.0,
        }
    }

    /// A custom-pitch variant of the hybrid bond (used by the F2F
    /// pitch-sweep ablation). Parasitics are held at the measured
    /// per-bump values; pitch only constrains bump density.
    pub fn with_pitch(mut self, pitch: Dbu) -> Self {
        self.pitch = pitch;
        self
    }

    /// Maximum number of bumps available on a die of the given
    /// footprint (one bump per pitch × pitch site).
    pub fn max_bumps(&self, footprint: Size) -> u64 {
        let per_row = (footprint.w.0 / self.pitch.0).max(0) as u64;
        let rows = (footprint.h.0 / self.pitch.0).max(0) as u64;
        per_row * rows
    }
}

impl Default for F2fSpec {
    fn default() -> Self {
        F2fSpec::hybrid_bond_n28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let f = F2fSpec::hybrid_bond_n28();
        assert_eq!(f.size, Size::from_um(0.5, 0.5));
        assert_eq!(f.height, Dbu::from_um(0.17));
        assert!((f.capacitance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bump_budget() {
        let f = F2fSpec::hybrid_bond_n28();
        // 0.6 mm² die at 1 um pitch: ~600k sites (1000 x 600 um)
        assert_eq!(f.max_bumps(Size::from_um(1_000.0, 600.0)), 600_000);
        let coarse = f.clone().with_pitch(Dbu::from_um(10.0));
        assert_eq!(coarse.max_bumps(Size::from_um(1_000.0, 600.0)), 6_000);
    }

    #[test]
    fn default_is_hybrid_bond() {
        assert_eq!(F2fSpec::default(), F2fSpec::hybrid_bond_n28());
    }
}
