//! The combined two-die BEOL — the core mechanism of Macro-3D.
//!
//! Section IV of the paper: to let an unmodified 2D P&R engine produce
//! a placement and routing that is *directly valid* for the F2F stack,
//! the two dies' BEOLs are merged into one metal stack. If the logic
//! die has M1–M6 and the macro die M1–M4, the combined layer order is
//!
//! `M1 → VIA12 → … → M6 → F2F_VIA → M1_MD → VIA12_MD → … → M4_MD`
//!
//! with macro-die layer names suffixed `_MD` so all names stay unique.
//! Any route crossing the `F2F_VIA` cut becomes an F2F bump. After
//! P&R, die separation maps every layer back to its die of origin.

use crate::f2f::F2fSpec;
use crate::stack::{DieRole, LayerId, MetalStack, ViaDef};

/// Where a combined-stack layer came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LayerOrigin {
    /// Die of origin.
    pub die: DieRole,
    /// Index of the layer within its original single-die stack.
    pub original: LayerId,
}

/// A combined BEOL plus the bookkeeping needed for die separation.
///
/// # Examples
///
/// ```
/// use macro3d_tech::{stack, CombinedBeol, F2fSpec};
/// use macro3d_tech::stack::{DieRole, LayerId};
///
/// let logic = stack::n28_stack(6, DieRole::Logic);
/// let md = stack::n28_stack(4, DieRole::Macro);
/// let combined = CombinedBeol::build(&logic, &md, &F2fSpec::hybrid_bond_n28());
///
/// // M1_MD sits right above the F2F via, as in the paper.
/// assert_eq!(combined.stack().f2f_cut(), Some(5));
/// let origin = combined.origin(LayerId(6));
/// assert_eq!(origin.die, DieRole::Macro);
/// assert_eq!(origin.original, LayerId(0));
/// ```
#[derive(Clone, Debug)]
pub struct CombinedBeol {
    stack: MetalStack,
    origins: Vec<LayerOrigin>,
    logic_layers: usize,
}

impl CombinedBeol {
    /// Merges a logic-die and a macro-die stack across an F2F bond.
    ///
    /// # Panics
    ///
    /// Panics if `logic` layers are not [`DieRole::Logic`] or `macro_die`
    /// layers are not [`DieRole::Macro`] (names must already carry the
    /// `_MD` suffix, i.e. come from
    /// [`n28_stack`](crate::stack::n28_stack) with the right role).
    pub fn build(logic: &MetalStack, macro_die: &MetalStack, f2f: &F2fSpec) -> Self {
        assert!(
            logic.layers().iter().all(|l| l.die == DieRole::Logic),
            "logic stack must contain only logic-die layers"
        );
        assert!(
            macro_die.layers().iter().all(|l| l.die == DieRole::Macro),
            "macro stack must contain only macro-die layers"
        );
        let mut layers = logic.layers().to_vec();
        layers.extend_from_slice(macro_die.layers());

        let mut vias = logic.vias().to_vec();
        vias.push(ViaDef {
            name: "F2F_VIA".to_string(),
            resistance: f2f.resistance,
            capacitance: f2f.capacitance,
            is_f2f: true,
        });
        vias.extend_from_slice(macro_die.vias());

        let mut origins: Vec<LayerOrigin> = (0..logic.num_layers())
            .map(|i| LayerOrigin {
                die: DieRole::Logic,
                original: LayerId(i as u32),
            })
            .collect();
        origins.extend((0..macro_die.num_layers()).map(|i| LayerOrigin {
            die: DieRole::Macro,
            original: LayerId(i as u32),
        }));

        CombinedBeol {
            stack: MetalStack::new(layers, vias),
            origins,
            logic_layers: logic.num_layers(),
        }
    }

    /// The merged stack handed to the 2D router.
    #[inline]
    pub fn stack(&self) -> &MetalStack {
        &self.stack
    }

    /// Number of logic-die layers (layers `0..logic_layers` belong to
    /// the logic die).
    #[inline]
    pub fn logic_layers(&self) -> usize {
        self.logic_layers
    }

    /// Number of macro-die layers.
    #[inline]
    pub fn macro_layers(&self) -> usize {
        self.stack.num_layers() - self.logic_layers
    }

    /// Maps a combined-stack layer back to its die of origin (die
    /// separation, flow step 4).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn origin(&self, id: LayerId) -> LayerOrigin {
        self.origins[id.index()]
    }

    /// Maps a macro-die-local layer id to its combined-stack id.
    ///
    /// Used when importing macro pin geometry: a pin on the macro
    /// die's `M3_MD` must land on combined layer `logic_layers + 2`.
    ///
    /// # Panics
    ///
    /// Panics if `local` exceeds the macro die's layer count.
    #[inline]
    pub fn macro_layer(&self, local: LayerId) -> LayerId {
        assert!(
            (local.index()) < self.macro_layers(),
            "macro-die layer out of range"
        );
        LayerId((self.logic_layers + local.index()) as u32)
    }

    /// Maps a logic-die-local layer id to its combined-stack id
    /// (identity, provided for symmetry).
    ///
    /// # Panics
    ///
    /// Panics if `local` exceeds the logic die's layer count.
    #[inline]
    pub fn logic_layer(&self, local: LayerId) -> LayerId {
        assert!(
            local.index() < self.logic_layers,
            "logic-die layer out of range"
        );
        local
    }

    /// True if a vertical transition from `from` to `from + 1` crosses
    /// the F2F bond (i.e. instantiates a bump).
    #[inline]
    pub fn crossing_is_f2f(&self, from: LayerId) -> bool {
        self.stack.f2f_cut() == Some(from.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::n28_stack;

    fn combined() -> CombinedBeol {
        CombinedBeol::build(
            &n28_stack(6, DieRole::Logic),
            &n28_stack(4, DieRole::Macro),
            &F2fSpec::hybrid_bond_n28(),
        )
    }

    #[test]
    fn paper_layer_order() {
        let c = combined();
        let names: Vec<&str> = c.stack().layers().iter().map(|l| l.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["M1", "M2", "M3", "M4", "M5", "M6", "M1_MD", "M2_MD", "M3_MD", "M4_MD"]
        );
        let via_names: Vec<&str> = c.stack().vias().iter().map(|v| v.name.as_str()).collect();
        assert_eq!(
            via_names,
            vec![
                "VIA12", "VIA23", "VIA34", "VIA45", "VIA56", "F2F_VIA", "VIA12_MD", "VIA23_MD",
                "VIA34_MD"
            ]
        );
    }

    #[test]
    fn f2f_cut_position_and_parasitics() {
        let c = combined();
        let cut = c.stack().f2f_cut().expect("combined stack has F2F via");
        assert_eq!(cut, 5);
        let via = c.stack().via(cut);
        assert!(via.is_f2f);
        assert!((via.resistance - 0.044).abs() < 1e-12);
        assert!((via.capacitance - 1.0).abs() < 1e-12);
        assert!(c.crossing_is_f2f(LayerId(5)));
        assert!(!c.crossing_is_f2f(LayerId(4)));
    }

    #[test]
    fn origins_round_trip() {
        let c = combined();
        for i in 0..6u32 {
            let o = c.origin(LayerId(i));
            assert_eq!(o.die, DieRole::Logic);
            assert_eq!(o.original, LayerId(i));
            assert_eq!(c.logic_layer(LayerId(i)), LayerId(i));
        }
        for i in 0..4u32 {
            let o = c.origin(LayerId(6 + i));
            assert_eq!(o.die, DieRole::Macro);
            assert_eq!(o.original, LayerId(i));
            assert_eq!(c.macro_layer(LayerId(i)), LayerId(6 + i));
        }
        assert_eq!(c.logic_layers(), 6);
        assert_eq!(c.macro_layers(), 4);
    }

    #[test]
    fn asymmetric_m6_m4_stack() {
        // The Table III heterogeneous-BEOL experiment: trimming the
        // macro die from 6 to 4 metals.
        let c66 = CombinedBeol::build(
            &n28_stack(6, DieRole::Logic),
            &n28_stack(6, DieRole::Macro),
            &F2fSpec::hybrid_bond_n28(),
        );
        let c64 = combined();
        assert_eq!(c66.stack().num_layers(), 12);
        assert_eq!(c64.stack().num_layers(), 10);
        assert_eq!(c66.stack().f2f_cut(), c64.stack().f2f_cut());
    }

    #[test]
    #[should_panic(expected = "macro stack must contain only macro-die layers")]
    fn wrong_role_panics() {
        let logic = n28_stack(6, DieRole::Logic);
        let _ = CombinedBeol::build(&logic, &logic, &F2fSpec::hybrid_bond_n28());
    }
}
