//! Synthetic N28 standard-cell library generator.
//!
//! The delay/slew tables are characterised from an analytic switch
//! model: `delay = intrinsic + k_slew·slew + (Rd/drive)·load`, with
//! per-class intrinsic delays, drive resistances and input
//! capacitances chosen to give 28 nm-class figures (FO4 ≈ 25 ps,
//! X1 inverter input cap ≈ 0.9 fF, row height 1.2 µm).
//!
//! ## Area scaling
//!
//! `n28_library(area_scale)` inflates every cell's *width*, input
//! capacitance and drive strength (lower Rd) by `area_scale`, and its
//! leakage/internal energy likewise. Generating a netlist with
//! `1/area_scale` as many instances then reproduces the paper's total
//! cell area, total pin capacitance and drive-vs-wire balance at a
//! fraction of the instance count — the knob the evaluation uses to
//! keep full-flow runs fast (see `DESIGN.md` §5).

use crate::cell::{CellClass, CellLibrary, CellPin, LibCell, PinDir, TimingArc};
use crate::nldm::Lut2;
use macro3d_geom::{Dbu, Size};

/// Row height of the synthetic N28 library.
pub const ROW_HEIGHT_UM: f64 = 1.2;
/// Placement site width of the synthetic N28 library.
pub const SITE_WIDTH_UM: f64 = 0.2;
/// Nominal supply voltage.
pub const VDD: f64 = 1.0;

/// NLDM characterisation axes used for every generated cell.
const SLEW_AXIS: [f64; 5] = [10.0, 30.0, 80.0, 200.0, 500.0];
const LOAD_AXIS: [f64; 6] = [0.5, 2.0, 8.0, 32.0, 128.0, 512.0];

/// Slew-dependence coefficient of cell delay (ps of delay per ps of
/// input slew).
const K_SLEW: f64 = 0.12;
/// Output slew model: `out_slew = 1.2·intrinsic + K_SLEW_OUT·(Rd/n)·load`.
const K_SLEW_OUT: f64 = 1.8;

struct ClassSpec {
    class: CellClass,
    /// X1 intrinsic delay, ps.
    intrinsic_ps: f64,
    /// X1 drive resistance, kΩ (delay contribution: kΩ × fF = ps).
    rd_kohm: f64,
    /// X1 input capacitance per data pin, fF.
    cin_ff: f64,
    /// X1 width in sites.
    width_sites: u32,
    /// Number of data inputs.
    inputs: u32,
    /// X1 internal energy per output toggle, fJ.
    e_int_fj: f64,
    /// Drive strengths generated.
    drives: &'static [u32],
}

const DRIVES_STD: &[u32] = &[1, 2, 4, 8];
const DRIVES_CLK: &[u32] = &[4, 8, 16];

fn class_specs() -> Vec<ClassSpec> {
    use CellClass::*;
    vec![
        ClassSpec {
            class: Inv,
            intrinsic_ps: 10.0,
            rd_kohm: 5.2,
            cin_ff: 0.9,
            width_sites: 2,
            inputs: 1,
            e_int_fj: 0.35,
            drives: DRIVES_STD,
        },
        ClassSpec {
            class: Buf,
            intrinsic_ps: 18.0,
            rd_kohm: 4.8,
            cin_ff: 0.9,
            width_sites: 3,
            inputs: 1,
            e_int_fj: 0.60,
            drives: DRIVES_STD,
        },
        ClassSpec {
            class: ClkBuf,
            intrinsic_ps: 17.0,
            rd_kohm: 4.2,
            cin_ff: 1.0,
            width_sites: 4,
            inputs: 1,
            e_int_fj: 0.70,
            drives: DRIVES_CLK,
        },
        ClassSpec {
            class: Nand2,
            intrinsic_ps: 14.0,
            rd_kohm: 6.0,
            cin_ff: 1.0,
            width_sites: 3,
            inputs: 2,
            e_int_fj: 0.50,
            drives: DRIVES_STD,
        },
        ClassSpec {
            class: Nor2,
            intrinsic_ps: 16.0,
            rd_kohm: 7.0,
            cin_ff: 1.0,
            width_sites: 3,
            inputs: 2,
            e_int_fj: 0.52,
            drives: DRIVES_STD,
        },
        ClassSpec {
            class: And2,
            intrinsic_ps: 20.0,
            rd_kohm: 5.0,
            cin_ff: 1.0,
            width_sites: 4,
            inputs: 2,
            e_int_fj: 0.65,
            drives: DRIVES_STD,
        },
        ClassSpec {
            class: Or2,
            intrinsic_ps: 22.0,
            rd_kohm: 5.5,
            cin_ff: 1.0,
            width_sites: 4,
            inputs: 2,
            e_int_fj: 0.68,
            drives: DRIVES_STD,
        },
        ClassSpec {
            class: Xor2,
            intrinsic_ps: 26.0,
            rd_kohm: 6.5,
            cin_ff: 1.4,
            width_sites: 5,
            inputs: 2,
            e_int_fj: 0.95,
            drives: DRIVES_STD,
        },
        ClassSpec {
            class: Aoi21,
            intrinsic_ps: 20.0,
            rd_kohm: 7.0,
            cin_ff: 1.1,
            width_sites: 4,
            inputs: 3,
            e_int_fj: 0.70,
            drives: DRIVES_STD,
        },
        ClassSpec {
            class: Oai21,
            intrinsic_ps: 20.0,
            rd_kohm: 7.0,
            cin_ff: 1.1,
            width_sites: 4,
            inputs: 3,
            e_int_fj: 0.70,
            drives: DRIVES_STD,
        },
        ClassSpec {
            class: Mux2,
            intrinsic_ps: 24.0,
            rd_kohm: 6.0,
            cin_ff: 1.2,
            width_sites: 5,
            inputs: 3,
            e_int_fj: 0.85,
            drives: DRIVES_STD,
        },
        ClassSpec {
            class: Dff,
            intrinsic_ps: 60.0,
            rd_kohm: 6.0,
            cin_ff: 0.8,
            width_sites: 9,
            inputs: 1,
            e_int_fj: 1.60,
            drives: DRIVES_STD,
        },
    ]
}

/// Generates the synthetic N28 library.
///
/// `area_scale ≥ 1.0` is the instance-count compression factor
/// described in the module docs; `1.0` generates the nominal library.
///
/// # Panics
///
/// Panics if `area_scale` is not positive and finite.
///
/// # Examples
///
/// ```
/// use macro3d_tech::libgen::n28_library;
///
/// let lib = n28_library(1.0);
/// assert!(lib.len() > 40);
/// // FO4 of the X1 inverter is in the 28nm ballpark.
/// let inv = lib.cell(lib.cell_by_name("INV_X1").expect("INV_X1 exists"));
/// let fo4 = inv.arcs[0].delay.eval(30.0, 4.0 * 0.9);
/// assert!(fo4 > 15.0 && fo4 < 40.0, "FO4 = {fo4}");
/// ```
pub fn n28_library(area_scale: f64) -> CellLibrary {
    assert!(
        area_scale.is_finite() && area_scale > 0.0,
        "area_scale must be positive and finite"
    );
    let mut cells = Vec::new();
    for spec in class_specs() {
        for &drive in spec.drives {
            cells.push(build_cell(&spec, drive, area_scale));
        }
    }
    CellLibrary::new(
        format!("n28_synth_x{area_scale}"),
        cells,
        Dbu::from_um(ROW_HEIGHT_UM),
        Dbu::from_um(SITE_WIDTH_UM),
        VDD,
    )
    .with_area_scale(area_scale)
}

fn build_cell(spec: &ClassSpec, drive: u32, area_scale: f64) -> LibCell {
    let n = drive as f64 * area_scale;
    // Width grows sub-linearly with drive (shared diffusion), then the
    // whole cell is stretched by area_scale.
    let width_sites =
        ((spec.width_sites as f64 * (1.0 + 0.55 * (drive as f64 - 1.0))) * area_scale).ceil();
    let size = Size::new(
        Dbu::from_um(width_sites * SITE_WIDTH_UM),
        Dbu::from_um(ROW_HEIGHT_UM),
    );

    let mut pins = Vec::new();
    let is_seq = spec.class.is_sequential();
    let cin = spec.cin_ff * n;
    if is_seq {
        pins.push(CellPin {
            name: "D".into(),
            dir: PinDir::Input,
            cap_ff: spec.cin_ff * area_scale,
            is_clock: false,
        });
        pins.push(CellPin {
            name: "CK".into(),
            dir: PinDir::Input,
            cap_ff: 0.6 * area_scale,
            is_clock: true,
        });
        pins.push(CellPin {
            name: "Q".into(),
            dir: PinDir::Output,
            cap_ff: 0.0,
            is_clock: false,
        });
    } else {
        const NAMES: [&str; 3] = ["A", "B", "C"];
        for i in 0..spec.inputs {
            pins.push(CellPin {
                name: NAMES[i as usize].into(),
                dir: PinDir::Input,
                cap_ff: cin,
                is_clock: false,
            });
        }
        pins.push(CellPin {
            name: "Y".into(),
            dir: PinDir::Output,
            cap_ff: 0.0,
            is_clock: false,
        });
    }

    let out_pin = pins.len() - 1;
    let rd = spec.rd_kohm / n;
    let intrinsic = spec.intrinsic_ps;
    let mut arcs = Vec::new();
    if is_seq {
        // CK -> Q arc only; D is captured by setup/hold.
        arcs.push(make_arc(1, out_pin, intrinsic, rd));
    } else {
        for i in 0..spec.inputs as usize {
            // later inputs are slightly slower (stack position)
            arcs.push(make_arc(i, out_pin, intrinsic * (1.0 + 0.1 * i as f64), rd));
        }
    }

    LibCell {
        name: format!("{}_X{}", spec.class.prefix(), drive),
        class: spec.class,
        drive,
        size,
        pins,
        arcs,
        leakage_nw: 2.0 * width_sites,
        internal_energy_fj: spec.e_int_fj * (0.5 + 0.5 * n),
        setup_ps: if is_seq { 35.0 } else { 0.0 },
        hold_ps: if is_seq { 5.0 } else { 0.0 },
    }
}

fn make_arc(from: usize, to: usize, intrinsic: f64, rd: f64) -> TimingArc {
    TimingArc {
        from_pin: from,
        to_pin: to,
        delay: Lut2::from_fn(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), move |s, l| {
            intrinsic + K_SLEW * s + rd * l
        }),
        out_slew: Lut2::from_fn(SLEW_AXIS.to_vec(), LOAD_AXIS.to_vec(), move |s, l| {
            1.2 * intrinsic + 0.05 * s + K_SLEW_OUT * rd * l
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_complete() {
        let lib = n28_library(1.0);
        for class in CellClass::ALL {
            assert!(
                lib.smallest(class).is_some(),
                "class {class} missing from library"
            );
        }
        // 11 classes x 4 drives + clkbuf x 3
        assert_eq!(lib.len(), 11 * 4 + 3);
    }

    #[test]
    fn drive_scaling_monotonic() {
        let lib = n28_library(1.0);
        let variants = lib.variants(CellClass::Inv);
        // stronger drive => lower delay at fixed load, more input cap,
        // more area, more leakage
        for w in variants.windows(2) {
            let weak = lib.cell(w[0]);
            let strong = lib.cell(w[1]);
            let load = 20.0;
            assert!(strong.arcs[0].delay.eval(30.0, load) < weak.arcs[0].delay.eval(30.0, load));
            assert!(strong.pins[0].cap_ff > weak.pins[0].cap_ff);
            assert!(strong.area_um2() > weak.area_um2());
            assert!(strong.leakage_nw > weak.leakage_nw);
        }
    }

    #[test]
    fn area_scale_compresses_instances() {
        let nominal = n28_library(1.0);
        let scaled = n28_library(8.0);
        let a = nominal.cell(nominal.cell_by_name("NAND2_X1").expect("exists"));
        let b = scaled.cell(scaled.cell_by_name("NAND2_X1").expect("exists"));
        // ~8x wider, ~8x input cap, ~8x lower drive resistance
        let ratio = b.area_um2() / a.area_um2();
        assert!(ratio > 7.0 && ratio < 9.5, "area ratio {ratio}");
        let cap_ratio = b.pins[0].cap_ff / a.pins[0].cap_ff;
        assert!((cap_ratio - 8.0).abs() < 0.2, "cap ratio {cap_ratio}");
        let d_a = a.arcs[0].delay.eval(30.0, 80.0);
        let d_b = b.arcs[0].delay.eval(30.0, 80.0);
        assert!(d_b < d_a, "scaled cell must drive harder");
    }

    #[test]
    fn fo4_is_28nm_class() {
        let lib = n28_library(1.0);
        let inv = lib.cell(lib.cell_by_name("INV_X1").expect("exists"));
        let fo4_load = 4.0 * inv.pins[0].cap_ff;
        let fo4 = inv.arcs[0].delay.eval(20.0, fo4_load);
        assert!(fo4 > 12.0 && fo4 < 40.0, "FO4 {fo4} out of range");
    }

    #[test]
    fn dff_arc_is_ck_to_q() {
        let lib = n28_library(1.0);
        let dff = lib.cell(lib.smallest(CellClass::Dff).expect("exists"));
        assert_eq!(dff.arcs.len(), 1);
        assert!(dff.pins[dff.arcs[0].from_pin].is_clock);
        assert_eq!(dff.pins[dff.arcs[0].to_pin].name, "Q");
    }

    #[test]
    fn clock_buffers_have_high_drive() {
        let lib = n28_library(1.0);
        let cb = lib.clock_buffers();
        assert_eq!(cb.len(), 3);
        assert!(lib.cell(cb[0]).drive >= 4);
    }

    #[test]
    #[should_panic(expected = "area_scale must be positive")]
    fn bad_scale_panics() {
        let _ = n28_library(0.0);
    }
}
