//! Process corners.
//!
//! As in the paper's setup (Sec. V-2): timing closure is performed at
//! the slowest corner, power is reported at the typical corner.

use std::fmt;

/// A process/voltage/temperature corner with derating factors applied
/// on top of the typical-corner characterisation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Slow-slow: sign-off timing corner.
    Ss,
    /// Typical-typical: power-report corner.
    #[default]
    Tt,
    /// Fast-fast: hold-check corner.
    Ff,
}

impl Corner {
    /// Multiplier applied to all cell delays and slews.
    pub fn delay_derate(self) -> f64 {
        match self {
            Corner::Ss => 1.25,
            Corner::Tt => 1.0,
            Corner::Ff => 0.85,
        }
    }

    /// Multiplier applied to wire resistance (metal is slower when
    /// hot/thin).
    pub fn wire_r_derate(self) -> f64 {
        match self {
            Corner::Ss => 1.10,
            Corner::Tt => 1.0,
            Corner::Ff => 0.95,
        }
    }

    /// Multiplier applied to leakage power.
    pub fn leakage_derate(self) -> f64 {
        match self {
            Corner::Ss => 0.6,
            Corner::Tt => 1.0,
            Corner::Ff => 2.5,
        }
    }

    /// The corner used for max-frequency sign-off.
    pub fn signoff() -> Corner {
        Corner::Ss
    }

    /// The corner used for power reporting.
    pub fn power_report() -> Corner {
        Corner::Tt
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corner::Ss => f.write_str("SS"),
            Corner::Tt => f.write_str("TT"),
            Corner::Ff => f.write_str("FF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_ordering() {
        assert!(Corner::Ss.delay_derate() > Corner::Tt.delay_derate());
        assert!(Corner::Tt.delay_derate() > Corner::Ff.delay_derate());
        assert_eq!(Corner::Tt.delay_derate(), 1.0);
        assert_eq!(Corner::Tt.wire_r_derate(), 1.0);
    }

    #[test]
    fn paper_corner_usage() {
        assert_eq!(Corner::signoff(), Corner::Ss);
        assert_eq!(Corner::power_report(), Corner::Tt);
    }

    #[test]
    fn leakage_rises_at_ff() {
        assert!(Corner::Ff.leakage_derate() > Corner::Tt.leakage_derate());
    }
}
