//! BEOL metal stacks: routing layers and inter-layer vias.

use macro3d_geom::Dbu;
use std::fmt;

/// Preferred routing direction of a metal layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Wires run left–right.
    Horizontal,
    /// Wires run bottom–top.
    Vertical,
}

impl Direction {
    /// The perpendicular direction.
    #[inline]
    pub fn orthogonal(self) -> Direction {
        match self {
            Direction::Horizontal => Direction::Vertical,
            Direction::Vertical => Direction::Horizontal,
        }
    }
}

/// Which die a layer belongs to in a combined two-die stack.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DieRole {
    /// The bottom die carrying standard cells.
    #[default]
    Logic,
    /// The top die carrying only macros (memory/sensor die).
    Macro,
}

impl fmt::Display for DieRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DieRole::Logic => f.write_str("logic"),
            DieRole::Macro => f.write_str("macro"),
        }
    }
}

/// Index of a routing layer within a [`MetalStack`], bottom-up
/// (`LayerId(0)` is M1 of the logic die).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerId(pub u32);

impl LayerId {
    /// Flat index for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LayerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// One routing (metal) layer of a BEOL stack.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutingLayer {
    /// Layer name as it would appear in a techlef (e.g. `"M3"`,
    /// `"M2_MD"`).
    pub name: String,
    /// Preferred direction.
    pub direction: Direction,
    /// Routing track pitch.
    pub pitch: Dbu,
    /// Default wire width.
    pub width: Dbu,
    /// Sheet resistance per unit length, Ω/µm at the typical corner.
    pub r_per_um: f64,
    /// Total capacitance per unit length, fF/µm at default spacing.
    pub c_per_um: f64,
    /// Die this layer physically belongs to.
    pub die: DieRole,
}

/// A via cut between two adjacent routing layers.
#[derive(Clone, Debug, PartialEq)]
pub struct ViaDef {
    /// Via name (e.g. `"VIA12"`, `"F2F_VIA"`, `"VIA23_MD"`).
    pub name: String,
    /// Resistance per cut, Ω.
    pub resistance: f64,
    /// Capacitance per cut, fF.
    pub capacitance: f64,
    /// True for the face-to-face bond via layer.
    pub is_f2f: bool,
}

/// An ordered BEOL stack: `layers[i]` and `layers[i+1]` are connected
/// by `vias[i]`.
///
/// A plain 2D die has a single-die stack; the Macro-3D combined BEOL
/// (see [`crate::CombinedBeol`]) is also a `MetalStack`, with the F2F
/// via marked by [`MetalStack::f2f_cut`].
///
/// # Examples
///
/// ```
/// use macro3d_tech::stack::{n28_stack, DieRole};
///
/// let s = n28_stack(6, DieRole::Logic);
/// assert_eq!(s.num_layers(), 6);
/// assert_eq!(s.layer(0).name, "M1");
/// assert!(s.f2f_cut().is_none());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct MetalStack {
    layers: Vec<RoutingLayer>,
    vias: Vec<ViaDef>,
}

impl MetalStack {
    /// Assembles a stack from layers and the vias between them.
    ///
    /// # Panics
    ///
    /// Panics unless `vias.len() + 1 == layers.len()` and at least one
    /// layer is present.
    pub fn new(layers: Vec<RoutingLayer>, vias: Vec<ViaDef>) -> Self {
        assert!(!layers.is_empty(), "a stack needs at least one layer");
        assert_eq!(
            vias.len() + 1,
            layers.len(),
            "need exactly one via between each adjacent layer pair"
        );
        MetalStack { layers, vias }
    }

    /// Number of routing layers.
    #[inline]
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Layer by index (bottom-up).
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of range.
    #[inline]
    pub fn layer(&self, ix: usize) -> &RoutingLayer {
        &self.layers[ix]
    }

    /// All layers, bottom-up.
    #[inline]
    pub fn layers(&self) -> &[RoutingLayer] {
        &self.layers
    }

    /// Via connecting layer `ix` and `ix + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `ix` is out of range.
    #[inline]
    pub fn via(&self, ix: usize) -> &ViaDef {
        &self.vias[ix]
    }

    /// All vias, bottom-up.
    #[inline]
    pub fn vias(&self) -> &[ViaDef] {
        &self.vias
    }

    /// Looks a layer up by name.
    pub fn layer_by_name(&self, name: &str) -> Option<LayerId> {
        self.layers
            .iter()
            .position(|l| l.name == name)
            .map(|i| LayerId(i as u32))
    }

    /// The via index of the F2F bond layer, if this is a combined
    /// stack: crossing from layer `i` to `i + 1` with `i == f2f_cut`
    /// creates an F2F bump.
    pub fn f2f_cut(&self) -> Option<usize> {
        self.vias.iter().position(|v| v.is_f2f)
    }

    /// Total routing track capacity per micrometre of cross-section,
    /// summed over all layers of the given direction. Used for
    /// fair-metal-capacity comparisons between 2D and 3D designs.
    pub fn track_density(&self, dir: Direction) -> f64 {
        self.layers
            .iter()
            .filter(|l| l.direction == dir)
            .map(|l| 1.0 / l.pitch.to_um())
            .sum()
    }

    /// Sum of per-layer metal area available over a die of the given
    /// footprint, in mm² (footprint × number of layers). The paper's
    /// Table III reports this as `Ametal`.
    pub fn metal_area_mm2(&self, footprint_mm2: f64) -> f64 {
        footprint_mm2 * self.num_layers() as f64
    }
}

/// Builds an `n`-metal synthetic 28 nm-class stack for one die.
///
/// Layer parameters follow published 28 nm-class numbers: tight-pitch
/// lower metals (100 nm pitch, ~3 Ω/µm), a mid layer, and semi-global
/// upper layers (280 nm pitch, ~0.6 Ω/µm). M1 is horizontal and
/// directions alternate upward. Via resistance falls with height.
///
/// For [`DieRole::Macro`], names get the `_MD` suffix the paper uses
/// in the combined BEOL.
///
/// # Panics
///
/// Panics if `n` is zero or greater than 8.
pub fn n28_stack(n: usize, die: DieRole) -> MetalStack {
    assert!((1..=8).contains(&n), "supported stacks have 1..=8 layers");
    // (pitch um, width um, r ohm/um, c fF/um) bottom-up for 8 layers.
    const PARAMS: [(f64, f64, f64, f64); 8] = [
        (0.10, 0.05, 4.0, 0.20),
        (0.10, 0.05, 3.0, 0.20),
        (0.10, 0.05, 3.0, 0.20),
        (0.14, 0.07, 1.5, 0.21),
        (0.28, 0.14, 0.6, 0.22),
        (0.28, 0.14, 0.6, 0.22),
        (0.56, 0.28, 0.25, 0.24),
        (0.56, 0.28, 0.25, 0.24),
    ];
    const VIA_R: [f64; 7] = [8.0, 6.0, 5.0, 3.0, 2.0, 1.5, 1.0];
    let suffix = match die {
        DieRole::Logic => "",
        DieRole::Macro => "_MD",
    };
    let layers = (0..n)
        .map(|i| {
            let (pitch, width, r, c) = PARAMS[i];
            RoutingLayer {
                name: format!("M{}{}", i + 1, suffix),
                direction: if i % 2 == 0 {
                    Direction::Horizontal
                } else {
                    Direction::Vertical
                },
                pitch: Dbu::from_um(pitch),
                width: Dbu::from_um(width),
                r_per_um: r,
                c_per_um: c,
                die,
            }
        })
        .collect();
    let vias = (0..n.saturating_sub(1))
        .map(|i| ViaDef {
            name: format!("VIA{}{}{}", i + 1, i + 2, suffix),
            resistance: VIA_R[i],
            capacitance: 0.05,
            is_f2f: false,
        })
        .collect();
    MetalStack::new(layers, vias)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n28_logic_stack_layout() {
        let s = n28_stack(6, DieRole::Logic);
        assert_eq!(s.num_layers(), 6);
        assert_eq!(s.vias().len(), 5);
        assert_eq!(s.layer(0).name, "M1");
        assert_eq!(s.layer(5).name, "M6");
        assert_eq!(s.via(0).name, "VIA12");
        assert_eq!(s.layer(0).direction, Direction::Horizontal);
        assert_eq!(s.layer(1).direction, Direction::Vertical);
        // upper layers are thicker/less resistive
        assert!(s.layer(5).r_per_um < s.layer(0).r_per_um);
        assert!(s.layer(5).pitch > s.layer(0).pitch);
    }

    #[test]
    fn macro_stack_is_suffixed() {
        let s = n28_stack(4, DieRole::Macro);
        assert_eq!(s.layer(0).name, "M1_MD");
        assert_eq!(s.via(2).name, "VIA34_MD");
        assert!(s.layers().iter().all(|l| l.die == DieRole::Macro));
    }

    #[test]
    fn lookup_by_name() {
        let s = n28_stack(6, DieRole::Logic);
        assert_eq!(s.layer_by_name("M3"), Some(LayerId(2)));
        assert_eq!(s.layer_by_name("M9"), None);
    }

    #[test]
    fn track_density_counts_directions() {
        let s = n28_stack(6, DieRole::Logic);
        let h = s.track_density(Direction::Horizontal);
        let v = s.track_density(Direction::Vertical);
        // M1, M3, M5 horizontal; M2, M4, M6 vertical
        assert!((h - (10.0 + 10.0 + 1.0 / 0.28)).abs() < 1e-6);
        assert!((v - (10.0 + 1.0 / 0.14 + 1.0 / 0.28)).abs() < 1e-6);
    }

    #[test]
    fn metal_area_scales_with_layers() {
        let s6 = n28_stack(6, DieRole::Logic);
        let s4 = n28_stack(4, DieRole::Logic);
        assert!((s6.metal_area_mm2(0.6) - 3.6).abs() < 1e-12);
        assert!((s4.metal_area_mm2(0.6) - 2.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one via between each adjacent layer pair")]
    fn mismatched_vias_panic() {
        let s = n28_stack(3, DieRole::Logic);
        let _ = MetalStack::new(s.layers().to_vec(), vec![]);
    }

    #[test]
    fn direction_orthogonal() {
        assert_eq!(Direction::Horizontal.orthogonal(), Direction::Vertical);
        assert_eq!(Direction::Vertical.orthogonal(), Direction::Horizontal);
    }

    #[test]
    fn plain_stack_has_no_f2f() {
        assert!(n28_stack(6, DieRole::Logic).f2f_cut().is_none());
    }
}
