//! Standard-cell library model.

use crate::nldm::Lut2;
use macro3d_geom::{Dbu, Size};
use std::fmt;

/// Direction of a cell pin.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PinDir {
    /// Signal input.
    Input,
    /// Signal output.
    Output,
}

/// Functional class of a standard cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellClass {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// Clock buffer (used by CTS; balanced rise/fall).
    ClkBuf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// AND-OR-invert 21.
    Aoi21,
    /// OR-AND-invert 21.
    Oai21,
    /// 2:1 multiplexer.
    Mux2,
    /// D flip-flop (positive edge).
    Dff,
}

impl CellClass {
    /// All classes in the synthetic library.
    pub const ALL: [CellClass; 12] = [
        CellClass::Inv,
        CellClass::Buf,
        CellClass::ClkBuf,
        CellClass::Nand2,
        CellClass::Nor2,
        CellClass::And2,
        CellClass::Or2,
        CellClass::Xor2,
        CellClass::Aoi21,
        CellClass::Oai21,
        CellClass::Mux2,
        CellClass::Dff,
    ];

    /// True for sequential (state-holding) classes.
    pub fn is_sequential(self) -> bool {
        matches!(self, CellClass::Dff)
    }

    /// Library naming prefix (e.g. `NAND2` in `NAND2_X2`).
    pub fn prefix(self) -> &'static str {
        match self {
            CellClass::Inv => "INV",
            CellClass::Buf => "BUF",
            CellClass::ClkBuf => "CLKBUF",
            CellClass::Nand2 => "NAND2",
            CellClass::Nor2 => "NOR2",
            CellClass::And2 => "AND2",
            CellClass::Or2 => "OR2",
            CellClass::Xor2 => "XOR2",
            CellClass::Aoi21 => "AOI21",
            CellClass::Oai21 => "OAI21",
            CellClass::Mux2 => "MUX2",
            CellClass::Dff => "DFF",
        }
    }
}

impl fmt::Display for CellClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.prefix())
    }
}

/// Identifier of a cell within a [`CellLibrary`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LibCellId(pub u32);

impl LibCellId {
    /// Flat index for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A pin of a library cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellPin {
    /// Pin name (`A`, `B`, `Y`, `D`, `CK`, `Q`, …).
    pub name: String,
    /// Direction.
    pub dir: PinDir,
    /// Input capacitance, fF (zero for outputs).
    pub cap_ff: f64,
    /// True for the clock pin of a sequential cell.
    pub is_clock: bool,
}

/// A delay arc from an input pin to an output pin.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingArc {
    /// Index of the input pin within the cell's pin list.
    pub from_pin: usize,
    /// Index of the output pin.
    pub to_pin: usize,
    /// Propagation delay table, ps over (slew ps, load fF).
    pub delay: Lut2,
    /// Output slew table, ps over (slew ps, load fF).
    pub out_slew: Lut2,
}

/// One library cell: geometry, pins, timing arcs and power data.
#[derive(Clone, Debug, PartialEq)]
pub struct LibCell {
    /// Library name, e.g. `NAND2_X2`.
    pub name: String,
    /// Functional class.
    pub class: CellClass,
    /// Drive strength multiplier (1, 2, 4, 8, 16).
    pub drive: u32,
    /// Placed footprint (width × row height).
    pub size: Size,
    /// Pins; inputs first by convention.
    pub pins: Vec<CellPin>,
    /// Input→output delay arcs.
    pub arcs: Vec<TimingArc>,
    /// Leakage power, nW at TT.
    pub leakage_nw: f64,
    /// Internal (short-circuit + internal node) energy per output
    /// toggle, fJ.
    pub internal_energy_fj: f64,
    /// Setup time, ps (sequential cells only).
    pub setup_ps: f64,
    /// Hold time, ps (sequential cells only).
    pub hold_ps: f64,
}

impl LibCell {
    /// True for state-holding cells.
    pub fn is_sequential(&self) -> bool {
        self.class.is_sequential()
    }

    /// Index of the clock pin, if any.
    pub fn clock_pin(&self) -> Option<usize> {
        self.pins.iter().position(|p| p.is_clock)
    }

    /// Index of the (single) output pin.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no output pin (never holds for
    /// generated libraries).
    #[allow(clippy::expect_used)]
    pub fn output_pin(&self) -> usize {
        self.pins
            .iter()
            .position(|p| p.dir == PinDir::Output)
            .expect("library cells have an output pin")
    }

    /// Indices of data (non-clock) input pins.
    pub fn data_input_pins(&self) -> impl Iterator<Item = usize> + '_ {
        self.pins
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dir == PinDir::Input && !p.is_clock)
            .map(|(i, _)| i)
    }

    /// Cell area in µm².
    pub fn area_um2(&self) -> f64 {
        self.size.area_um2()
    }

    /// Worst (max over arcs) delay at the given slew/load — a quick
    /// bound used by optimization heuristics.
    pub fn worst_delay(&self, slew: f64, load: f64) -> f64 {
        self.arcs
            .iter()
            .map(|a| a.delay.eval(slew, load))
            .fold(0.0, f64::max)
    }
}

/// A complete standard-cell library plus row geometry.
///
/// # Examples
///
/// ```
/// use macro3d_tech::libgen::n28_library;
///
/// let lib = n28_library(1.0);
/// let inv = lib.cell_by_name("INV_X1").expect("INV_X1 exists");
/// let bigger = lib.resize(inv, 1).expect("INV_X2 exists");
/// assert_eq!(lib.cell(bigger).name, "INV_X2");
/// ```
#[derive(Clone, Debug)]
pub struct CellLibrary {
    name: String,
    cells: Vec<LibCell>,
    row_height: Dbu,
    site_width: Dbu,
    voltage: f64,
    area_scale: f64,
}

impl CellLibrary {
    /// Assembles a library.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty or geometry is non-positive.
    pub fn new(
        name: impl Into<String>,
        cells: Vec<LibCell>,
        row_height: Dbu,
        site_width: Dbu,
        voltage: f64,
    ) -> Self {
        assert!(!cells.is_empty(), "library must contain cells");
        assert!(
            row_height.0 > 0 && site_width.0 > 0,
            "geometry must be positive"
        );
        assert!(voltage > 0.0, "supply voltage must be positive");
        CellLibrary {
            name: name.into(),
            cells,
            row_height,
            site_width,
            voltage,
            area_scale: 1.0,
        }
    }

    /// Records the instance-compression scale this library was
    /// generated with (see `libgen`). Returns `self` for chaining.
    pub fn with_area_scale(mut self, area_scale: f64) -> Self {
        self.area_scale = area_scale;
        self
    }

    /// The instance-compression scale this library was generated
    /// with.
    pub fn area_scale(&self) -> f64 {
        self.area_scale
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn cell(&self, id: LibCellId) -> &LibCell {
        &self.cells[id.index()]
    }

    /// All cells.
    pub fn cells(&self) -> &[LibCell] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the library has no cells (never holds after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Looks a cell up by library name.
    pub fn cell_by_name(&self, name: &str) -> Option<LibCellId> {
        self.cells
            .iter()
            .position(|c| c.name == name)
            .map(|i| LibCellId(i as u32))
    }

    /// All drive variants of a class, ascending by drive.
    pub fn variants(&self, class: CellClass) -> Vec<LibCellId> {
        let mut v: Vec<LibCellId> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.class == class)
            .map(|(i, _)| LibCellId(i as u32))
            .collect();
        v.sort_by_key(|id| self.cell(*id).drive);
        v
    }

    /// The weakest drive variant of a class, if the class exists.
    pub fn smallest(&self, class: CellClass) -> Option<LibCellId> {
        self.variants(class).first().copied()
    }

    /// The strongest drive variant of a class, if the class exists.
    pub fn largest(&self, class: CellClass) -> Option<LibCellId> {
        self.variants(class).last().copied()
    }

    /// The same class one drive step up (`step = 1`) or down
    /// (`step = -1`); `None` at the end of the range.
    pub fn resize(&self, id: LibCellId, step: i32) -> Option<LibCellId> {
        let class = self.cell(id).class;
        let variants = self.variants(class);
        let pos = variants.iter().position(|&v| v == id)?;
        let target = pos as i64 + step as i64;
        if target < 0 || target as usize >= variants.len() {
            None
        } else {
            Some(variants[target as usize])
        }
    }

    /// Standard-cell row height.
    pub fn row_height(&self) -> Dbu {
        self.row_height
    }

    /// Placement site width.
    pub fn site_width(&self) -> Dbu {
        self.site_width
    }

    /// Nominal supply voltage, V.
    pub fn voltage(&self) -> f64 {
        self.voltage
    }

    /// Buffer cells for signal-net repeater insertion, ascending by
    /// drive.
    pub fn buffers(&self) -> Vec<LibCellId> {
        self.variants(CellClass::Buf)
    }

    /// Clock buffers for CTS, ascending by drive.
    pub fn clock_buffers(&self) -> Vec<LibCellId> {
        self.variants(CellClass::ClkBuf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libgen::n28_library;

    #[test]
    fn class_properties() {
        assert!(CellClass::Dff.is_sequential());
        assert!(!CellClass::Inv.is_sequential());
        assert_eq!(CellClass::Nand2.prefix(), "NAND2");
        assert_eq!(CellClass::ALL.len(), 12);
    }

    #[test]
    fn variants_sorted_by_drive() {
        let lib = n28_library(1.0);
        let v = lib.variants(CellClass::Inv);
        assert!(v.len() >= 3);
        for w in v.windows(2) {
            assert!(lib.cell(w[0]).drive < lib.cell(w[1]).drive);
        }
    }

    #[test]
    fn resize_walks_drive_chain() {
        let lib = n28_library(1.0);
        let x1 = lib.smallest(CellClass::Nand2).expect("nand2 exists");
        let x2 = lib.resize(x1, 1).expect("x2 exists");
        assert_eq!(lib.cell(x2).drive, 2);
        assert_eq!(lib.resize(x1, -1), None);
        let largest = lib.largest(CellClass::Nand2).expect("nand2 exists");
        assert_eq!(lib.resize(largest, 1), None);
        assert_eq!(lib.resize(x2, -1), Some(x1));
    }

    #[test]
    fn dff_has_clock_pin_and_setup() {
        let lib = n28_library(1.0);
        let dff = lib.smallest(CellClass::Dff).expect("dff exists");
        let cell = lib.cell(dff);
        assert!(cell.is_sequential());
        let ck = cell.clock_pin().expect("dff has clock pin");
        assert!(cell.pins[ck].is_clock);
        assert!(cell.setup_ps > 0.0);
        assert_eq!(cell.data_input_pins().count(), 1);
    }

    #[test]
    fn output_pin_is_found() {
        let lib = n28_library(1.0);
        for c in lib.cells() {
            let out = c.output_pin();
            assert_eq!(c.pins[out].dir, PinDir::Output);
        }
    }
}
