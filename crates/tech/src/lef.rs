//! Technology-file writers: techlef (abstract layer view) and tch
//! (parasitic extraction rules).
//!
//! The Macro-3D flow's second step generates exactly these two files
//! for the combined two-die BEOL — "tch files for parasitic
//! extraction (one for each corner) and a techlef file for the
//! abstract view of the layers" (paper Sec. IV). The writers here
//! emit the same information in the same spirit: layer order,
//! directions, pitches, and per-unit-length RC for each corner.

use crate::corner::Corner;
use crate::stack::{Direction, MetalStack};
use std::fmt::Write as _;

/// Renders a techlef-style abstract view of a stack (layers bottom-up
/// with direction/pitch/width, cut layers between them).
///
/// # Examples
///
/// ```
/// use macro3d_tech::{lef, stack};
///
/// let s = stack::n28_stack(6, stack::DieRole::Logic);
/// let lef = lef::write_techlef(&s);
/// assert!(lef.contains("LAYER M1"));
/// assert!(lef.contains("DIRECTION HORIZONTAL"));
/// ```
pub fn write_techlef(stack: &MetalStack) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "VERSION 5.8 ;");
    let _ = writeln!(s, "BUSBITCHARS \"[]\" ;");
    let _ = writeln!(s, "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n");
    for (i, layer) in stack.layers().iter().enumerate() {
        let dir = match layer.direction {
            Direction::Horizontal => "HORIZONTAL",
            Direction::Vertical => "VERTICAL",
        };
        let _ = writeln!(s, "LAYER {}", layer.name);
        let _ = writeln!(s, "  TYPE ROUTING ;");
        let _ = writeln!(s, "  DIRECTION {dir} ;");
        let _ = writeln!(s, "  PITCH {:.3} ;", layer.pitch.to_um());
        let _ = writeln!(s, "  WIDTH {:.3} ;", layer.width.to_um());
        let _ = writeln!(s, "END {}\n", layer.name);
        if i < stack.vias().len() {
            let via = stack.via(i);
            let _ = writeln!(s, "LAYER {}", via.name);
            let _ = writeln!(s, "  TYPE CUT ;");
            if via.is_f2f {
                let _ = writeln!(s, "  PROPERTY F2F_BOND TRUE ;");
            }
            let _ = writeln!(s, "END {}\n", via.name);
        }
    }
    let _ = writeln!(s, "END LIBRARY");
    s
}

/// Renders a tch-style extraction rule file for one corner:
/// per-unit-length resistance/capacitance per layer and per-cut via
/// parasitics, with the corner's derating applied.
///
/// # Examples
///
/// ```
/// use macro3d_tech::{lef, stack, Corner};
///
/// let s = stack::n28_stack(4, stack::DieRole::Macro);
/// let tch = lef::write_tch(&s, Corner::Ss);
/// assert!(tch.contains("CORNER SS"));
/// assert!(tch.contains("M1_MD"));
/// ```
pub fn write_tch(stack: &MetalStack, corner: Corner) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# extraction rules (tch), generated");
    let _ = writeln!(s, "CORNER {corner}");
    let _ = writeln!(s, "# layer  R[ohm/um]  C[fF/um]");
    for layer in stack.layers() {
        let _ = writeln!(
            s,
            "WIRE {:<8} {:>8.4} {:>8.4}",
            layer.name,
            layer.r_per_um * corner.wire_r_derate(),
            layer.c_per_um
        );
    }
    let _ = writeln!(s, "# via    R[ohm]  C[fF]");
    for via in stack.vias() {
        let _ = writeln!(
            s,
            "VIA  {:<8} {:>8.4} {:>8.4}{}",
            via.name,
            via.resistance * corner.wire_r_derate(),
            via.capacitance,
            if via.is_f2f { "  # F2F bond" } else { "" }
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combined::CombinedBeol;
    use crate::f2f::F2fSpec;
    use crate::stack::{n28_stack, DieRole};

    #[test]
    fn techlef_lists_all_layers_in_order() {
        let c = CombinedBeol::build(
            &n28_stack(6, DieRole::Logic),
            &n28_stack(4, DieRole::Macro),
            &F2fSpec::hybrid_bond_n28(),
        );
        let lef = write_techlef(c.stack());
        // paper's layer order: ... M6 -> F2F_VIA -> M1_MD ...
        let m6 = lef.find("LAYER M6\n").expect("M6 present");
        let f2f = lef.find("LAYER F2F_VIA").expect("F2F_VIA present");
        let m1md = lef.find("LAYER M1_MD").expect("M1_MD present");
        assert!(m6 < f2f && f2f < m1md, "combined order preserved");
        assert!(lef.contains("PROPERTY F2F_BOND TRUE"));
    }

    #[test]
    fn tch_per_corner_derates() {
        let s = n28_stack(6, DieRole::Logic);
        let tt = write_tch(&s, Corner::Tt);
        let ss = write_tch(&s, Corner::Ss);
        assert!(tt.contains("CORNER TT"));
        assert!(ss.contains("CORNER SS"));
        // SS resistance strictly larger than TT for M1 (4.0 vs 4.4)
        assert!(tt.contains("4.0000"));
        assert!(ss.contains("4.4000"));
    }

    #[test]
    fn tch_marks_f2f_via() {
        let c = CombinedBeol::build(
            &n28_stack(6, DieRole::Logic),
            &n28_stack(6, DieRole::Macro),
            &F2fSpec::hybrid_bond_n28(),
        );
        let tch = write_tch(c.stack(), Corner::Tt);
        assert!(tch.contains("F2F bond"));
        assert!(tch.contains("0.0440"));
    }
}
