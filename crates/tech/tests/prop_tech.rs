//! Property-based tests for the technology substrate.

use macro3d_tech::libgen::n28_library;
use macro3d_tech::stack::{n28_stack, DieRole};
use macro3d_tech::{CombinedBeol, Corner, F2fSpec, Lut2};
use proptest::prelude::*;

proptest! {
    /// NLDM interpolation is monotone for tables characterised from a
    /// monotone function, everywhere in (and beyond) the grid.
    #[test]
    fn lut_monotone_inputs_give_monotone_outputs(
        s1 in 5.0f64..600.0,
        s2 in 5.0f64..600.0,
        l1 in 0.1f64..600.0,
        l2 in 0.1f64..600.0,
    ) {
        let lut = Lut2::from_fn(
            vec![10.0, 30.0, 80.0, 200.0, 500.0],
            vec![0.5, 2.0, 8.0, 32.0, 128.0],
            |s, l| 12.0 + 0.1 * s + 3.0 * l,
        );
        let (slo, shi) = (s1.min(s2), s1.max(s2));
        let (llo, lhi) = (l1.min(l2), l1.max(l2));
        prop_assert!(lut.eval(shi, llo) >= lut.eval(slo, llo) - 1e-9);
        prop_assert!(lut.eval(slo, lhi) >= lut.eval(slo, llo) - 1e-9);
    }

    /// Every library cell's delay grows with load and every input cap
    /// is positive, at any generation scale.
    #[test]
    fn library_is_physical_at_any_scale(scale in 1.0f64..64.0) {
        let lib = n28_library(scale);
        for cell in lib.cells() {
            for arc in &cell.arcs {
                let d_small = arc.delay.eval(30.0, 1.0);
                let d_big = arc.delay.eval(30.0, 200.0);
                prop_assert!(d_big > d_small, "{} delay not load-monotone", cell.name);
            }
            for pin in &cell.pins {
                if pin.dir == macro3d_tech::PinDir::Input {
                    prop_assert!(pin.cap_ff > 0.0, "{} pin {} capless", cell.name, pin.name);
                }
            }
            prop_assert!(cell.area_um2() > 0.0);
            prop_assert!(cell.leakage_nw > 0.0);
        }
    }

    /// Combined stacks preserve both dies' layers and map origins
    /// bijectively for any layer-count combination.
    #[test]
    fn combined_stack_origin_bijection(nl in 2usize..=8, nm in 1usize..=8) {
        let logic = n28_stack(nl, DieRole::Logic);
        let md = n28_stack(nm, DieRole::Macro);
        let c = CombinedBeol::build(&logic, &md, &F2fSpec::hybrid_bond_n28());
        prop_assert_eq!(c.stack().num_layers(), nl + nm);
        prop_assert_eq!(c.stack().f2f_cut(), Some(nl - 1));
        let mut seen = std::collections::HashSet::new();
        for i in 0..(nl + nm) as u32 {
            let o = c.origin(macro3d_tech::stack::LayerId(i));
            prop_assert!(seen.insert((o.die, o.original)));
        }
    }

    /// Corner derates order consistently: SS slowest, FF fastest.
    #[test]
    fn corner_ordering_everywhere(load in 0.5f64..500.0, slew in 5.0f64..500.0) {
        let lib = n28_library(1.0);
        let inv = lib.cell(lib.cell_by_name("INV_X1").expect("exists"));
        let d = |c: Corner| inv.arcs[0].delay.eval(slew, load) * c.delay_derate();
        prop_assert!(d(Corner::Ss) > d(Corner::Tt));
        prop_assert!(d(Corner::Tt) > d(Corner::Ff));
    }

    /// F2F bump budget scales with area and inversely with pitch².
    #[test]
    fn bump_budget_scaling(w in 10.0f64..2_000.0, h in 10.0f64..2_000.0) {
        use macro3d_geom::{Dbu, Size};
        let fine = F2fSpec::hybrid_bond_n28();
        let coarse = fine.clone().with_pitch(Dbu::from_um(2.0));
        let s = Size::from_um(w, h);
        let nf = fine.max_bumps(s);
        let nc = coarse.max_bumps(s);
        // 2x pitch => ~4x fewer sites (integer truncation tolerance)
        prop_assert!(nf >= nc * 3);
    }
}
