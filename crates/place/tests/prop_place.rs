//! Property-based tests for the placement engine.

use macro3d_geom::{Dbu, Rect};
use macro3d_netlist::{Design, InstId, PinRef};
use macro3d_place::macro_place::{is_legal, pack_balanced, pack_ring, pack_shelves};
use macro3d_place::partition::{bipartition, FmConfig, Hypergraph};
use macro3d_place::{global_place, Floorplan, GlobalPlaceConfig, PortPlan};
use macro3d_sram::MemoryCompiler;
use macro3d_tech::libgen::n28_library;
use macro3d_tech::stack::DieRole;
use macro3d_tech::CellClass;
use proptest::prelude::*;
use std::sync::Arc;

fn macro_design(shapes: &[(u32, u32)]) -> (Design, Vec<InstId>) {
    let lib = Arc::new(n28_library(1.0));
    let mut d = Design::new("t", lib);
    let c = MemoryCompiler::n28();
    let mut insts = Vec::new();
    for (k, &(w, b)) in shapes.iter().enumerate() {
        let mm = d.add_macro_master(c.sram(&format!("s{k}"), w, b));
        insts.push(d.add_macro_in(format!("m{k}"), mm, 0));
    }
    (d, insts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every packer either fails or produces a legal placement.
    #[test]
    fn packers_produce_legal_placements(
        shapes in proptest::collection::vec(
            (64u32..4096, proptest::sample::select(vec![32u32, 64, 128])),
            1..10,
        ),
        die_um in 400.0f64..1_200.0,
    ) {
        let (d, insts) = macro_design(&shapes);
        let die = Rect::from_um(0.0, 0.0, die_um, die_um);
        let halo = Dbu::from_um(2.0);
        if let Some(p) = pack_shelves(&d, &insts, die, halo, DieRole::Macro) {
            prop_assert!(is_legal(&p, die));
            prop_assert_eq!(p.len(), insts.len());
        }
        if let Some(p) = pack_ring(&d, &insts, die, halo) {
            prop_assert!(is_legal(&p, die));
            prop_assert_eq!(p.len(), insts.len());
        }
        if let Some(p) = pack_balanced(&d, &insts, die, halo) {
            prop_assert!(is_legal(&p, die));
            prop_assert_eq!(p.len(), insts.len());
        }
    }

    /// FM always returns a side per vertex, preserves determinism and
    /// never worsens the trivial cut of the initial assignment by
    /// more than the rollback guarantee (cut <= initial cut).
    #[test]
    fn fm_never_worse_than_initial(
        edges in proptest::collection::vec((0u32..40, 0u32..40), 10..120),
        frac in 0.3f64..0.7,
    ) {
        let mut b = Hypergraph::builder(vec![1.0; 40]);
        for &(u, v) in &edges {
            if u != v {
                b.add_net(&[u, v], None);
            }
        }
        let hg = b.build();
        // initial assignment replicated from the implementation
        let mut init = vec![1u8; 40];
        let target = 40.0 * frac;
        let mut acc = 0.0;
        for slot in init.iter_mut() {
            if acc < target {
                *slot = 0;
                acc += 1.0;
            }
        }
        let initial_cut = hg.cut_size(&init);
        let side = bipartition(&hg, frac, Some(init), &FmConfig::default());
        prop_assert_eq!(side.len(), 40);
        prop_assert!(hg.cut_size(&side) <= initial_cut);
        // determinism
        let mut init2 = vec![1u8; 40];
        let mut acc2 = 0.0;
        for slot in init2.iter_mut() {
            if acc2 < target {
                *slot = 0;
                acc2 += 1.0;
            }
        }
        let side2 = bipartition(&hg, frac, Some(init2), &FmConfig::default());
        prop_assert_eq!(side, side2);
    }

    /// Global placement always keeps cells inside the die, for
    /// arbitrary connected designs.
    #[test]
    fn global_place_stays_in_die(n in 20usize..200, seed in 0u64..50) {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib);
        let mut prev: Option<InstId> = None;
        let mut rng = seed;
        for i in 0..n {
            let c = d.add_cell(format!("c{i}"), inv);
            if let Some(p) = prev {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                if rng % 3 != 0 {
                    let net = d.add_net(format!("n{i}"));
                    d.connect(net, PinRef::inst(p, 1));
                    d.connect(net, PinRef::inst(c, 0));
                }
            }
            prev = Some(c);
        }
        let fp = Floorplan::new(
            Rect::from_um(0.0, 0.0, 60.0, 60.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        );
        let ports = PortPlan::assign(&d, fp.die());
        let placement = global_place(&d, &fp, &ports, &GlobalPlaceConfig::default());
        for i in d.inst_ids() {
            prop_assert!(
                fp.die().inflate(Dbu::from_um(2.0)).contains(placement.pos[i.index()]),
                "cell {} escaped to {:?}",
                i,
                placement.pos[i.index()]
            );
        }
    }
}
