//! Fiduccia–Mattheyses hypergraph bipartitioning.
//!
//! Used twice in the reproduction: by recursive-bisection global
//! placement (this crate) and by the Shrunk-2D/Compact-2D *tier
//! partitioning* step (the `macro3d` flows crate), which splits placed
//! cells across the two dies of the F2F stack.

use std::collections::BTreeSet;

/// A hypergraph with vertex areas and optional per-net anchors.
///
/// An anchor acts as an immovable pin on side 0 or 1 (terminal
/// propagation: the projection of pins outside the current placement
/// region, or pre-assigned cells in tier partitioning).
#[derive(Clone, Debug, Default)]
pub struct Hypergraph {
    vertex_area: Vec<f64>,
    /// CSR nets → vertices.
    net_offsets: Vec<u32>,
    pins: Vec<u32>,
    net_anchor: Vec<i8>,
    /// CSR vertices → nets.
    vert_offsets: Vec<u32>,
    vert_nets: Vec<u32>,
}

impl Hypergraph {
    /// Starts building a hypergraph with the given vertex areas.
    pub fn builder(vertex_area: Vec<f64>) -> HypergraphBuilder {
        HypergraphBuilder {
            vertex_area,
            nets: Vec::new(),
            anchors: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_area.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_anchor.len()
    }

    fn net_pins(&self, net: usize) -> &[u32] {
        &self.pins[self.net_offsets[net] as usize..self.net_offsets[net + 1] as usize]
    }

    fn vertex_nets(&self, v: usize) -> &[u32] {
        &self.vert_nets[self.vert_offsets[v] as usize..self.vert_offsets[v + 1] as usize]
    }

    /// Number of nets cut by an assignment (anchors count as pins on
    /// their side).
    pub fn cut_size(&self, side: &[u8]) -> usize {
        (0..self.num_nets())
            .filter(|&n| {
                let mut seen = [false, false];
                if self.net_anchor[n] >= 0 {
                    seen[self.net_anchor[n] as usize] = true;
                }
                for &p in self.net_pins(n) {
                    seen[side[p as usize] as usize] = true;
                }
                seen[0] && seen[1]
            })
            .count()
    }
}

/// Builder for [`Hypergraph`].
#[derive(Clone, Debug)]
pub struct HypergraphBuilder {
    vertex_area: Vec<f64>,
    nets: Vec<Vec<u32>>,
    anchors: Vec<i8>,
}

impl HypergraphBuilder {
    /// Adds a net over the given vertices with an optional anchor side
    /// (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if a vertex id is out of range or the anchor is not in
    /// {0, 1}.
    pub fn add_net(&mut self, vertices: &[u32], anchor: Option<u8>) {
        for &v in vertices {
            assert!((v as usize) < self.vertex_area.len(), "vertex out of range");
        }
        if let Some(a) = anchor {
            assert!(a < 2, "anchor side must be 0 or 1");
        }
        self.nets.push(vertices.to_vec());
        self.anchors.push(anchor.map(|a| a as i8).unwrap_or(-1));
    }

    /// Finalises the CSR representation.
    pub fn build(self) -> Hypergraph {
        let nv = self.vertex_area.len();
        let mut net_offsets = Vec::with_capacity(self.nets.len() + 1);
        let mut pins = Vec::new();
        net_offsets.push(0u32);
        for net in &self.nets {
            pins.extend_from_slice(net);
            net_offsets.push(pins.len() as u32);
        }
        // vertex -> nets CSR
        let mut counts = vec![0u32; nv];
        for net in &self.nets {
            for &v in net {
                counts[v as usize] += 1;
            }
        }
        let mut vert_offsets = vec![0u32; nv + 1];
        for i in 0..nv {
            vert_offsets[i + 1] = vert_offsets[i] + counts[i];
        }
        let mut vert_nets = vec![0u32; vert_offsets[nv] as usize];
        let mut cursor = vert_offsets.clone();
        for (n, net) in self.nets.iter().enumerate() {
            for &v in net {
                vert_nets[cursor[v as usize] as usize] = n as u32;
                cursor[v as usize] += 1;
            }
        }
        Hypergraph {
            vertex_area: self.vertex_area,
            net_offsets,
            pins,
            net_anchor: self.anchors,
            vert_offsets,
            vert_nets,
        }
    }
}

/// FM configuration.
#[derive(Clone, Copy, Debug)]
pub struct FmConfig {
    /// Number of full FM passes.
    pub passes: usize,
    /// Allowed deviation of side areas from their targets, as a
    /// fraction of total area.
    pub balance_tol: f64,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            passes: 2,
            balance_tol: 0.05,
        }
    }
}

/// Bipartitions a hypergraph minimising the cut, with side-0 area
/// targeted at `target_frac_a` of the total.
///
/// Returns the side (0/1) per vertex. Deterministic for a given
/// input: the initial assignment (when `init` is `None`) fills side 0
/// in vertex order until the target area is reached.
///
/// # Panics
///
/// Panics if `init` is provided with the wrong length, or
/// `target_frac_a` is outside `(0, 1)`.
pub fn bipartition(
    hg: &Hypergraph,
    target_frac_a: f64,
    init: Option<Vec<u8>>,
    cfg: &FmConfig,
) -> Vec<u8> {
    assert!(
        target_frac_a > 0.0 && target_frac_a < 1.0,
        "target fraction must be in (0,1)"
    );
    let nv = hg.num_vertices();
    let total_area: f64 = hg.vertex_area.iter().sum();
    let target_a = total_area * target_frac_a;
    let tol = total_area * cfg.balance_tol;

    let mut side: Vec<u8> = match init {
        Some(s) => {
            assert_eq!(s.len(), nv, "init length mismatch");
            s
        }
        None => {
            let mut s = vec![1u8; nv];
            let mut acc = 0.0;
            for (v, sv) in s.iter_mut().enumerate() {
                if acc < target_a {
                    *sv = 0;
                    acc += hg.vertex_area[v];
                }
            }
            s
        }
    };
    if nv == 0 {
        return side;
    }

    for pass in 0..cfg.passes {
        // budget checkpoint: an early stop keeps the current (always
        // balanced) assignment — each completed pass only improves the
        // cut, so best-so-far is the state as it stands
        if let macro3d_par::Checkpoint::Stop(reason) = macro3d_par::checkpoint("place/fm_passes") {
            macro3d_par::note_degradation(
                "place/fm_passes",
                reason,
                format!("stopped after {pass} of {} FM passes", cfg.passes),
            );
            break;
        }
        let improved = fm_pass(hg, &mut side, target_a, tol);
        if !improved {
            break;
        }
    }
    side
}

/// Bucket-list gain structure (the classic FM data structure).
///
/// Gains are bounded by the maximum vertex degree, so free vertices
/// live in `2 * max_degree + 1` buckets indexed by gain. Each bucket
/// is an ordered set so selection is deterministic: the best vertex is
/// the one with maximum gain, ties broken toward the smallest id —
/// exactly the order the previous lazy-heap implementation produced.
struct GainBuckets {
    offset: i32,
    buckets: Vec<BTreeSet<u32>>,
    /// Highest bucket index that may be non-empty (monotonically
    /// repaired in [`Self::pop_best`]).
    max_bucket: usize,
    live: usize,
}

impl GainBuckets {
    fn new(max_degree: usize) -> Self {
        GainBuckets {
            offset: max_degree as i32,
            buckets: vec![BTreeSet::new(); 2 * max_degree + 1],
            max_bucket: 0,
            live: 0,
        }
    }

    #[inline]
    fn ix(&self, gain: i32) -> usize {
        (gain + self.offset) as usize
    }

    fn insert(&mut self, v: u32, gain: i32) {
        let ix = self.ix(gain);
        self.buckets[ix].insert(v);
        self.max_bucket = self.max_bucket.max(ix);
        self.live += 1;
    }

    /// Moves `v` from its `old`-gain bucket to the `new` one.
    fn update(&mut self, v: u32, old: i32, new: i32) {
        let old_ix = self.ix(old);
        if self.buckets[old_ix].remove(&v) {
            let new_ix = self.ix(new);
            self.buckets[new_ix].insert(v);
            self.max_bucket = self.max_bucket.max(new_ix);
        }
    }

    /// Removes and returns the best free vertex (max gain, min id).
    fn pop_best(&mut self) -> Option<u32> {
        if self.live == 0 {
            return None;
        }
        loop {
            if let Some(&v) = self.buckets[self.max_bucket].first() {
                self.buckets[self.max_bucket].remove(&v);
                self.live -= 1;
                return Some(v);
            }
            if self.max_bucket == 0 {
                return None;
            }
            self.max_bucket -= 1;
        }
    }
}

/// One FM pass: every vertex moved at most once; rolls back to the
/// best prefix. Returns whether the cut improved.
///
/// Gains are computed once up front and *delta-updated* on each move
/// commit (the Fiduccia–Mattheyses update rules), so a pass costs
/// O(pins) bucket operations instead of re-deriving every touched
/// vertex's gain from its full net list.
fn fm_pass(hg: &Hypergraph, side: &mut [u8], target_a: f64, tol: f64) -> bool {
    let nv = hg.num_vertices();
    let nn = hg.num_nets();

    // pin counts per net per side (anchors are permanent pins)
    let mut cnt = vec![[0i32; 2]; nn];
    for n in 0..nn {
        if hg.net_anchor[n] >= 0 {
            cnt[n][hg.net_anchor[n] as usize] += 1;
        }
        for &p in hg.net_pins(n) {
            cnt[n][side[p as usize] as usize] += 1;
        }
    }
    let mut area = [0.0f64; 2];
    for v in 0..nv {
        area[side[v] as usize] += hg.vertex_area[v];
    }

    let max_degree = (0..nv).map(|v| hg.vertex_nets(v).len()).max().unwrap_or(0);
    let mut buckets = GainBuckets::new(max_degree);
    let mut gain = vec![0i32; nv];
    for (v, g) in gain.iter_mut().enumerate() {
        let from = side[v] as usize;
        let to = 1 - from;
        for &n in hg.vertex_nets(v) {
            let c = cnt[n as usize];
            if c[from] == 1 {
                *g += 1;
            }
            if c[to] == 0 {
                *g -= 1;
            }
        }
        buckets.insert(v as u32, *g);
    }
    let mut locked = vec![false; nv];

    let mut moves: Vec<usize> = Vec::with_capacity(nv);
    let mut cum_gain = 0i32;
    let mut best_gain = 0i32;
    let mut best_len = 0usize;

    while let Some(v) = buckets.pop_best() {
        let v = v as usize;
        let from = side[v] as usize;
        let to = 1 - from;
        // balance check: side-0 area must stay within target ± tol
        let new_a0 = match (from, to) {
            (0, 1) => area[0] - hg.vertex_area[v],
            _ => area[0] + hg.vertex_area[v],
        };
        // accept if within tolerance, or if it improves an
        // already-out-of-balance state
        let cur_dev = (area[0] - target_a).abs();
        let new_dev = (new_a0 - target_a).abs();
        if new_dev > tol && new_dev >= cur_dev {
            locked[v] = true;
            continue;
        }

        // apply move
        locked[v] = true;
        area[from] -= hg.vertex_area[v];
        area[to] += hg.vertex_area[v];
        side[v] = to as u8;
        cum_gain += gain[v];
        moves.push(v);
        if cum_gain > best_gain {
            best_gain = cum_gain;
            best_len = moves.len();
        }

        // FM delta-gain updates: only pins whose gain actually changes
        // are touched, before and after the net's side counts move.
        let delta = |p: usize, d: i32, gain: &mut [i32], buckets: &mut GainBuckets| {
            let new = gain[p] + d;
            buckets.update(p as u32, gain[p], new);
            gain[p] = new;
        };
        for &n in hg.vertex_nets(v) {
            let n = n as usize;
            if cnt[n][to] == 0 {
                // the net was uncut away from `to`: every free pin now
                // gains from no longer cutting it by leaving
                for &p in hg.net_pins(n) {
                    let p = p as usize;
                    if !locked[p] {
                        delta(p, 1, &mut gain, &mut buckets);
                    }
                }
            } else if cnt[n][to] == 1 {
                // the lone `to`-side pin loses its uncut-by-moving gain
                for &p in hg.net_pins(n) {
                    let p = p as usize;
                    if p != v && side[p] as usize == to {
                        if !locked[p] {
                            delta(p, -1, &mut gain, &mut buckets);
                        }
                        break;
                    }
                }
            }
            cnt[n][from] -= 1;
            cnt[n][to] += 1;
            if cnt[n][from] == 0 {
                // the net left `from` entirely: moving a pin back would
                // re-cut it
                for &p in hg.net_pins(n) {
                    let p = p as usize;
                    if !locked[p] {
                        delta(p, -1, &mut gain, &mut buckets);
                    }
                }
            } else if cnt[n][from] == 1 {
                // the lone remaining `from`-side pin can now uncut the
                // net by following
                for &p in hg.net_pins(n) {
                    let p = p as usize;
                    if p != v && side[p] as usize == from {
                        if !locked[p] {
                            delta(p, 1, &mut gain, &mut buckets);
                        }
                        break;
                    }
                }
            }
        }
    }

    // roll back past the best prefix
    for &v in &moves[best_len..] {
        side[v] ^= 1;
    }
    FM_PASSES.inc();
    FM_GAIN.add(best_gain.max(0) as u64);
    best_gain > 0
}

/// Executed FM passes across all bisection nodes (commutative, so
/// safe under the fork-join placer).
static FM_PASSES: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("place/fm_passes");
/// Total cut-gain kept by those passes.
static FM_GAIN: macro3d_obs::SiteCounter = macro3d_obs::SiteCounter::new("place/fm_gain");

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// The pre-incremental FM pass (full `gain_of` recompute around a
    /// lazy max-heap), kept verbatim as the reference the delta-update
    /// implementation must match move for move.
    fn fm_pass_reference(hg: &Hypergraph, side: &mut [u8], target_a: f64, tol: f64) -> bool {
        let nv = hg.num_vertices();
        let nn = hg.num_nets();

        let mut cnt = vec![[0i32; 2]; nn];
        for n in 0..nn {
            if hg.net_anchor[n] >= 0 {
                cnt[n][hg.net_anchor[n] as usize] += 1;
            }
            for &p in hg.net_pins(n) {
                cnt[n][side[p as usize] as usize] += 1;
            }
        }
        let mut area = [0.0f64; 2];
        for v in 0..nv {
            area[side[v] as usize] += hg.vertex_area[v];
        }

        let gain_of = |v: usize, side: &[u8], cnt: &[[i32; 2]]| -> i32 {
            let from = side[v] as usize;
            let to = 1 - from;
            let mut g = 0;
            for &n in hg.vertex_nets(v) {
                let c = cnt[n as usize];
                if c[from] == 1 {
                    g += 1;
                }
                if c[to] == 0 {
                    g -= 1;
                }
            }
            g
        };

        let mut heap: BinaryHeap<(i32, Reverse<usize>)> = BinaryHeap::new();
        let mut gain = vec![0i32; nv];
        for (v, g) in gain.iter_mut().enumerate() {
            *g = gain_of(v, side, &cnt);
            heap.push((*g, Reverse(v)));
        }
        let mut locked = vec![false; nv];

        let mut moves: Vec<usize> = Vec::with_capacity(nv);
        let mut cum_gain = 0i32;
        let mut best_gain = 0i32;
        let mut best_len = 0usize;

        while let Some((g, Reverse(v))) = heap.pop() {
            if locked[v] || g != gain[v] {
                continue;
            }
            let from = side[v] as usize;
            let to = 1 - from;
            let new_a0 = match (from, to) {
                (0, 1) => area[0] - hg.vertex_area[v],
                _ => area[0] + hg.vertex_area[v],
            };
            let cur_dev = (area[0] - target_a).abs();
            let new_dev = (new_a0 - target_a).abs();
            if new_dev > tol && new_dev >= cur_dev {
                locked[v] = true;
                continue;
            }

            locked[v] = true;
            area[from] -= hg.vertex_area[v];
            area[to] += hg.vertex_area[v];
            side[v] = to as u8;
            cum_gain += g;
            moves.push(v);
            if cum_gain > best_gain {
                best_gain = cum_gain;
                best_len = moves.len();
            }

            for &n in hg.vertex_nets(v) {
                let n = n as usize;
                cnt[n][from] -= 1;
                cnt[n][to] += 1;
                for &p in hg.net_pins(n) {
                    let p = p as usize;
                    if !locked[p] {
                        let g2 = gain_of(p, side, &cnt);
                        if g2 != gain[p] {
                            gain[p] = g2;
                            heap.push((g2, Reverse(p)));
                        }
                    }
                }
            }
        }

        for &v in &moves[best_len..] {
            side[v] ^= 1;
        }
        best_gain > 0
    }

    /// `bipartition` driven by the reference pass.
    fn bipartition_reference(hg: &Hypergraph, target_frac_a: f64, cfg: &FmConfig) -> Vec<u8> {
        let nv = hg.num_vertices();
        let total_area: f64 = hg.vertex_area.iter().sum();
        let target_a = total_area * target_frac_a;
        let tol = total_area * cfg.balance_tol;
        let mut side = vec![1u8; nv];
        let mut acc = 0.0;
        for (v, sv) in side.iter_mut().enumerate() {
            if acc < target_a {
                *sv = 0;
                acc += hg.vertex_area[v];
            }
        }
        if nv == 0 {
            return side;
        }
        for _ in 0..cfg.passes {
            if !fm_pass_reference(hg, &mut side, target_a, tol) {
                break;
            }
        }
        side
    }

    /// A reproducible random hypergraph: `nn` nets of 2–5 pins over
    /// `nv` vertices with mixed areas and occasional anchors.
    fn random_hypergraph(nv: usize, nn: usize, seed: u64) -> Hypergraph {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let areas: Vec<f64> = (0..nv).map(|_| rng.gen_range(0.5..2.0)).collect();
        let mut b = Hypergraph::builder(areas);
        for _ in 0..nn {
            let deg = rng.gen_range(2..=5.min(nv));
            let mut pins: Vec<u32> = Vec::with_capacity(deg);
            while pins.len() < deg {
                let v = rng.gen_range(0..nv) as u32;
                if !pins.contains(&v) {
                    pins.push(v);
                }
            }
            let anchor = if rng.gen_bool(0.2) {
                Some(rng.gen_range(0..2u8))
            } else {
                None
            };
            b.add_net(&pins, anchor);
        }
        b.build()
    }

    #[test]
    fn incremental_gains_match_full_recompute() {
        for (nv, nn, seed) in [
            (8, 12, 1u64),
            (40, 90, 2),
            (100, 250, 3),
            (100, 250, 4),
            (64, 300, 5),
        ] {
            let hg = random_hypergraph(nv, nn, seed);
            for (frac, tol, passes) in [(0.5, 0.08, 2), (0.3, 0.05, 4), (0.5, 0.02, 1)] {
                let cfg = FmConfig {
                    passes,
                    balance_tol: tol,
                };
                let fast = bipartition(&hg, frac, None, &cfg);
                let slow = bipartition_reference(&hg, frac, &cfg);
                assert_eq!(
                    fast, slow,
                    "partitions diverge for nv={nv} nn={nn} seed={seed} \
                     frac={frac} tol={tol} passes={passes}"
                );
            }
        }
    }

    #[test]
    fn gain_buckets_pop_max_gain_min_id() {
        let mut b = GainBuckets::new(3);
        b.insert(5, 1);
        b.insert(2, 1);
        b.insert(9, -3);
        b.insert(7, 3);
        assert_eq!(b.pop_best(), Some(7));
        // ties break toward the smaller id
        assert_eq!(b.pop_best(), Some(2));
        b.update(9, -3, 2);
        assert_eq!(b.pop_best(), Some(9));
        assert_eq!(b.pop_best(), Some(5));
        assert_eq!(b.pop_best(), None);
    }

    /// Two 4-cliques joined by a single net: the optimal cut is 1.
    fn two_clusters() -> Hypergraph {
        let mut b = Hypergraph::builder(vec![1.0; 8]);
        for c in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_net(&[c + i, c + j], None);
                }
            }
        }
        b.add_net(&[0, 4], None); // bridge
        b.build()
    }

    #[test]
    fn finds_natural_clusters() {
        let hg = two_clusters();
        let side = bipartition(&hg, 0.5, None, &FmConfig::default());
        assert_eq!(hg.cut_size(&side), 1);
        // clusters stay together
        assert_eq!(side[0], side[1]);
        assert_eq!(side[1], side[2]);
        assert_eq!(side[2], side[3]);
        assert_eq!(side[4], side[5]);
        assert_ne!(side[0], side[4]);
    }

    #[test]
    fn respects_balance() {
        let hg = two_clusters();
        let side = bipartition(&hg, 0.5, None, &FmConfig::default());
        let a: f64 = side.iter().filter(|&&s| s == 0).count() as f64;
        assert!((a - 4.0).abs() <= 1.0);
    }

    #[test]
    fn anchors_pull_vertices() {
        // a path 0-1-2; anchor net on 0 to side 1
        let mut b = Hypergraph::builder(vec![1.0; 4]);
        b.add_net(&[0, 1], None);
        b.add_net(&[1, 2], None);
        b.add_net(&[2, 3], None);
        b.add_net(&[0], Some(1)); // pull vertex 0 to side 1
        b.add_net(&[3], Some(0)); // pull vertex 3 to side 0
        let hg = b.build();
        let side = bipartition(
            &hg,
            0.5,
            None,
            &FmConfig {
                passes: 4,
                balance_tol: 0.3,
            },
        );
        assert_eq!(side[0], 1, "anchored to side 1");
        assert_eq!(side[3], 0, "anchored to side 0");
    }

    #[test]
    fn initial_assignment_honours_target() {
        let mut b = Hypergraph::builder(vec![1.0; 10]);
        b.add_net(&[0, 9], None);
        let hg = b.build();
        let side = bipartition(
            &hg,
            0.3,
            None,
            &FmConfig {
                passes: 0,
                balance_tol: 0.05,
            },
        );
        let a = side.iter().filter(|&&s| s == 0).count();
        assert_eq!(a, 3);
    }

    #[test]
    fn cut_size_counts_anchored_nets() {
        let mut b = Hypergraph::builder(vec![1.0; 2]);
        b.add_net(&[0], Some(1));
        b.add_net(&[0, 1], None);
        let hg = b.build();
        // both vertices on side 0 => anchored net is cut, pair net is not
        assert_eq!(hg.cut_size(&[0, 0]), 1);
        // both on the anchor's side => nothing is cut
        assert_eq!(hg.cut_size(&[1, 1]), 0);
        // split pair: the pair net is cut, the anchored net is not
        assert_eq!(hg.cut_size(&[1, 0]), 1);
    }

    #[test]
    fn empty_graph() {
        let hg = Hypergraph::builder(vec![]).build();
        let side = bipartition(&hg, 0.5, None, &FmConfig::default());
        assert!(side.is_empty());
    }
}
