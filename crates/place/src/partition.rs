//! Fiduccia–Mattheyses hypergraph bipartitioning.
//!
//! Used twice in the reproduction: by recursive-bisection global
//! placement (this crate) and by the Shrunk-2D/Compact-2D *tier
//! partitioning* step (the `macro3d` flows crate), which splits placed
//! cells across the two dies of the F2F stack.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A hypergraph with vertex areas and optional per-net anchors.
///
/// An anchor acts as an immovable pin on side 0 or 1 (terminal
/// propagation: the projection of pins outside the current placement
/// region, or pre-assigned cells in tier partitioning).
#[derive(Clone, Debug, Default)]
pub struct Hypergraph {
    vertex_area: Vec<f64>,
    /// CSR nets → vertices.
    net_offsets: Vec<u32>,
    pins: Vec<u32>,
    net_anchor: Vec<i8>,
    /// CSR vertices → nets.
    vert_offsets: Vec<u32>,
    vert_nets: Vec<u32>,
}

impl Hypergraph {
    /// Starts building a hypergraph with the given vertex areas.
    pub fn builder(vertex_area: Vec<f64>) -> HypergraphBuilder {
        HypergraphBuilder {
            vertex_area,
            nets: Vec::new(),
            anchors: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_area.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.net_anchor.len()
    }

    fn net_pins(&self, net: usize) -> &[u32] {
        &self.pins[self.net_offsets[net] as usize..self.net_offsets[net + 1] as usize]
    }

    fn vertex_nets(&self, v: usize) -> &[u32] {
        &self.vert_nets[self.vert_offsets[v] as usize..self.vert_offsets[v + 1] as usize]
    }

    /// Number of nets cut by an assignment (anchors count as pins on
    /// their side).
    pub fn cut_size(&self, side: &[u8]) -> usize {
        (0..self.num_nets())
            .filter(|&n| {
                let mut seen = [false, false];
                if self.net_anchor[n] >= 0 {
                    seen[self.net_anchor[n] as usize] = true;
                }
                for &p in self.net_pins(n) {
                    seen[side[p as usize] as usize] = true;
                }
                seen[0] && seen[1]
            })
            .count()
    }
}

/// Builder for [`Hypergraph`].
#[derive(Clone, Debug)]
pub struct HypergraphBuilder {
    vertex_area: Vec<f64>,
    nets: Vec<Vec<u32>>,
    anchors: Vec<i8>,
}

impl HypergraphBuilder {
    /// Adds a net over the given vertices with an optional anchor side
    /// (0 or 1).
    ///
    /// # Panics
    ///
    /// Panics if a vertex id is out of range or the anchor is not in
    /// {0, 1}.
    pub fn add_net(&mut self, vertices: &[u32], anchor: Option<u8>) {
        for &v in vertices {
            assert!((v as usize) < self.vertex_area.len(), "vertex out of range");
        }
        if let Some(a) = anchor {
            assert!(a < 2, "anchor side must be 0 or 1");
        }
        self.nets.push(vertices.to_vec());
        self.anchors.push(anchor.map(|a| a as i8).unwrap_or(-1));
    }

    /// Finalises the CSR representation.
    pub fn build(self) -> Hypergraph {
        let nv = self.vertex_area.len();
        let mut net_offsets = Vec::with_capacity(self.nets.len() + 1);
        let mut pins = Vec::new();
        net_offsets.push(0u32);
        for net in &self.nets {
            pins.extend_from_slice(net);
            net_offsets.push(pins.len() as u32);
        }
        // vertex -> nets CSR
        let mut counts = vec![0u32; nv];
        for net in &self.nets {
            for &v in net {
                counts[v as usize] += 1;
            }
        }
        let mut vert_offsets = vec![0u32; nv + 1];
        for i in 0..nv {
            vert_offsets[i + 1] = vert_offsets[i] + counts[i];
        }
        let mut vert_nets = vec![0u32; *vert_offsets.last().expect("nv+1 offsets") as usize];
        let mut cursor = vert_offsets.clone();
        for (n, net) in self.nets.iter().enumerate() {
            for &v in net {
                vert_nets[cursor[v as usize] as usize] = n as u32;
                cursor[v as usize] += 1;
            }
        }
        Hypergraph {
            vertex_area: self.vertex_area,
            net_offsets,
            pins,
            net_anchor: self.anchors,
            vert_offsets,
            vert_nets,
        }
    }
}

/// FM configuration.
#[derive(Clone, Copy, Debug)]
pub struct FmConfig {
    /// Number of full FM passes.
    pub passes: usize,
    /// Allowed deviation of side areas from their targets, as a
    /// fraction of total area.
    pub balance_tol: f64,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            passes: 2,
            balance_tol: 0.05,
        }
    }
}

/// Bipartitions a hypergraph minimising the cut, with side-0 area
/// targeted at `target_frac_a` of the total.
///
/// Returns the side (0/1) per vertex. Deterministic for a given
/// input: the initial assignment (when `init` is `None`) fills side 0
/// in vertex order until the target area is reached.
///
/// # Panics
///
/// Panics if `init` is provided with the wrong length, or
/// `target_frac_a` is outside `(0, 1)`.
pub fn bipartition(
    hg: &Hypergraph,
    target_frac_a: f64,
    init: Option<Vec<u8>>,
    cfg: &FmConfig,
) -> Vec<u8> {
    assert!(
        target_frac_a > 0.0 && target_frac_a < 1.0,
        "target fraction must be in (0,1)"
    );
    let nv = hg.num_vertices();
    let total_area: f64 = hg.vertex_area.iter().sum();
    let target_a = total_area * target_frac_a;
    let tol = total_area * cfg.balance_tol;

    let mut side: Vec<u8> = match init {
        Some(s) => {
            assert_eq!(s.len(), nv, "init length mismatch");
            s
        }
        None => {
            let mut s = vec![1u8; nv];
            let mut acc = 0.0;
            for (v, sv) in s.iter_mut().enumerate() {
                if acc < target_a {
                    *sv = 0;
                    acc += hg.vertex_area[v];
                }
            }
            s
        }
    };
    if nv == 0 {
        return side;
    }

    for _ in 0..cfg.passes {
        let improved = fm_pass(hg, &mut side, target_a, tol);
        if !improved {
            break;
        }
    }
    side
}

/// One FM pass: every vertex moved at most once; rolls back to the
/// best prefix. Returns whether the cut improved.
fn fm_pass(hg: &Hypergraph, side: &mut [u8], target_a: f64, tol: f64) -> bool {
    let nv = hg.num_vertices();
    let nn = hg.num_nets();

    // pin counts per net per side (anchors are permanent pins)
    let mut cnt = vec![[0i32; 2]; nn];
    for n in 0..nn {
        if hg.net_anchor[n] >= 0 {
            cnt[n][hg.net_anchor[n] as usize] += 1;
        }
        for &p in hg.net_pins(n) {
            cnt[n][side[p as usize] as usize] += 1;
        }
    }
    let mut area = [0.0f64; 2];
    for v in 0..nv {
        area[side[v] as usize] += hg.vertex_area[v];
    }

    let gain_of = |v: usize, side: &[u8], cnt: &[[i32; 2]]| -> i32 {
        let from = side[v] as usize;
        let to = 1 - from;
        let mut g = 0;
        for &n in hg.vertex_nets(v) {
            let c = cnt[n as usize];
            if c[from] == 1 {
                g += 1;
            }
            if c[to] == 0 {
                g -= 1;
            }
        }
        g
    };

    // max-heap with lazy invalidation
    let mut heap: BinaryHeap<(i32, Reverse<usize>)> = BinaryHeap::new();
    let mut gain = vec![0i32; nv];
    for (v, g) in gain.iter_mut().enumerate() {
        *g = gain_of(v, side, &cnt);
        heap.push((*g, Reverse(v)));
    }
    let mut locked = vec![false; nv];

    let mut moves: Vec<usize> = Vec::with_capacity(nv);
    let mut cum_gain = 0i32;
    let mut best_gain = 0i32;
    let mut best_len = 0usize;

    while let Some((g, Reverse(v))) = heap.pop() {
        if locked[v] || g != gain[v] {
            continue; // stale entry
        }
        let from = side[v] as usize;
        let to = 1 - from;
        // balance check: side-0 area must stay within target ± tol
        let new_a0 = match (from, to) {
            (0, 1) => area[0] - hg.vertex_area[v],
            _ => area[0] + hg.vertex_area[v],
        };
        // accept if within tolerance, or if it improves an
        // already-out-of-balance state
        let cur_dev = (area[0] - target_a).abs();
        let new_dev = (new_a0 - target_a).abs();
        if new_dev > tol && new_dev >= cur_dev {
            locked[v] = true;
            continue;
        }

        // apply move
        locked[v] = true;
        area[from] -= hg.vertex_area[v];
        area[to] += hg.vertex_area[v];
        side[v] = to as u8;
        cum_gain += g;
        moves.push(v);
        if cum_gain > best_gain {
            best_gain = cum_gain;
            best_len = moves.len();
        }

        // update neighbour gains
        for &n in hg.vertex_nets(v) {
            let n = n as usize;
            cnt[n][from] -= 1;
            cnt[n][to] += 1;
            for &p in hg.net_pins(n) {
                let p = p as usize;
                if !locked[p] {
                    let g2 = gain_of(p, side, &cnt);
                    if g2 != gain[p] {
                        gain[p] = g2;
                        heap.push((g2, Reverse(p)));
                    }
                }
            }
        }
    }

    // roll back past the best prefix
    for &v in &moves[best_len..] {
        side[v] ^= 1;
    }
    best_gain > 0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by a single net: the optimal cut is 1.
    fn two_clusters() -> Hypergraph {
        let mut b = Hypergraph::builder(vec![1.0; 8]);
        for c in [0u32, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_net(&[c + i, c + j], None);
                }
            }
        }
        b.add_net(&[0, 4], None); // bridge
        b.build()
    }

    #[test]
    fn finds_natural_clusters() {
        let hg = two_clusters();
        let side = bipartition(&hg, 0.5, None, &FmConfig::default());
        assert_eq!(hg.cut_size(&side), 1);
        // clusters stay together
        assert_eq!(side[0], side[1]);
        assert_eq!(side[1], side[2]);
        assert_eq!(side[2], side[3]);
        assert_eq!(side[4], side[5]);
        assert_ne!(side[0], side[4]);
    }

    #[test]
    fn respects_balance() {
        let hg = two_clusters();
        let side = bipartition(&hg, 0.5, None, &FmConfig::default());
        let a: f64 = side.iter().filter(|&&s| s == 0).count() as f64;
        assert!((a - 4.0).abs() <= 1.0);
    }

    #[test]
    fn anchors_pull_vertices() {
        // a path 0-1-2; anchor net on 0 to side 1
        let mut b = Hypergraph::builder(vec![1.0; 4]);
        b.add_net(&[0, 1], None);
        b.add_net(&[1, 2], None);
        b.add_net(&[2, 3], None);
        b.add_net(&[0], Some(1)); // pull vertex 0 to side 1
        b.add_net(&[3], Some(0)); // pull vertex 3 to side 0
        let hg = b.build();
        let side = bipartition(
            &hg,
            0.5,
            None,
            &FmConfig {
                passes: 4,
                balance_tol: 0.3,
            },
        );
        assert_eq!(side[0], 1, "anchored to side 1");
        assert_eq!(side[3], 0, "anchored to side 0");
    }

    #[test]
    fn initial_assignment_honours_target() {
        let mut b = Hypergraph::builder(vec![1.0; 10]);
        b.add_net(&[0, 9], None);
        let hg = b.build();
        let side = bipartition(
            &hg,
            0.3,
            None,
            &FmConfig {
                passes: 0,
                balance_tol: 0.05,
            },
        );
        let a = side.iter().filter(|&&s| s == 0).count();
        assert_eq!(a, 3);
    }

    #[test]
    fn cut_size_counts_anchored_nets() {
        let mut b = Hypergraph::builder(vec![1.0; 2]);
        b.add_net(&[0], Some(1));
        b.add_net(&[0, 1], None);
        let hg = b.build();
        // both vertices on side 0 => anchored net is cut, pair net is not
        assert_eq!(hg.cut_size(&[0, 0]), 1);
        // both on the anchor's side => nothing is cut
        assert_eq!(hg.cut_size(&[1, 1]), 0);
        // split pair: the pair net is cut, the anchored net is not
        assert_eq!(hg.cut_size(&[1, 0]), 1);
    }

    #[test]
    fn empty_graph() {
        let hg = Hypergraph::builder(vec![]).build();
        let side = bipartition(&hg, 0.5, None, &FmConfig::default());
        assert!(side.is_empty());
    }
}
