//! Floorplans: die area, rows, macro placements and blockages.

use macro3d_geom::{Dbu, Point, Rect, Size};
use macro3d_netlist::InstId;
use macro3d_tech::stack::DieRole;

/// Kind of a placement blockage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BlockageKind {
    /// No standard cell may be placed inside.
    Full,
    /// Only the given fraction of the area is usable (the S2D/C2D
    /// representation of "a macro occupies the other die here").
    Partial(f64),
}

/// A placement blockage over a region of the die.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Blockage {
    /// Blocked region.
    pub rect: Rect,
    /// Blockage kind.
    pub kind: BlockageKind,
}

/// A macro fixed at a location on one die.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MacroPlacement {
    /// The macro instance.
    pub inst: InstId,
    /// Placed footprint.
    pub rect: Rect,
    /// Die the macro physically occupies.
    pub die: DieRole,
}

/// A floorplan: the core area as seen by one placement run.
///
/// # Examples
///
/// ```
/// use macro3d_geom::{Dbu, Rect};
/// use macro3d_place::Floorplan;
///
/// let fp = Floorplan::new(
///     Rect::from_um(0.0, 0.0, 500.0, 480.0),
///     Dbu::from_um(1.2),
///     Dbu::from_um(0.2),
/// );
/// assert_eq!(fp.num_rows(), 400);
/// assert!((fp.usable_area_um2(fp.die()) - 500.0 * 480.0).abs() < 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Floorplan {
    die: Rect,
    row_height: Dbu,
    site_width: Dbu,
    /// Macros placed in this floorplan (possibly on either die).
    pub macros: Vec<MacroPlacement>,
    /// Placement blockages for standard cells.
    pub blockages: Vec<Blockage>,
}

impl Floorplan {
    /// Creates an empty floorplan over a die.
    ///
    /// # Panics
    ///
    /// Panics if the die is empty or the row geometry non-positive.
    pub fn new(die: Rect, row_height: Dbu, site_width: Dbu) -> Self {
        assert!(!die.is_empty(), "die must be non-empty");
        assert!(
            row_height.0 > 0 && site_width.0 > 0,
            "row geometry must be positive"
        );
        Floorplan {
            die,
            row_height,
            site_width,
            macros: Vec::new(),
            blockages: Vec::new(),
        }
    }

    /// The core placement area.
    #[inline]
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Standard-cell row height.
    #[inline]
    pub fn row_height(&self) -> Dbu {
        self.row_height
    }

    /// Placement site width.
    #[inline]
    pub fn site_width(&self) -> Dbu {
        self.site_width
    }

    /// Number of complete standard-cell rows.
    pub fn num_rows(&self) -> usize {
        (self.die.height() / self.row_height) as usize
    }

    /// The rectangle of row `i` (0 = bottom).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_rect(&self, i: usize) -> Rect {
        assert!(i < self.num_rows(), "row index out of range");
        let y0 = self.die.lo.y + self.row_height * i as i64;
        Rect::new(
            Point::new(self.die.lo.x, y0),
            Point::new(self.die.hi.x, y0 + self.row_height),
        )
    }

    /// Registers a placed macro and adds its placement blockage (with
    /// halo) if it occupies *this* floorplan's standard-cell die.
    ///
    /// `this_die` identifies which die the floorplan's standard cells
    /// live on; macros on the other die contribute no blockage here
    /// (the Macro-3D projection) unless explicitly added by the flow
    /// (the S2D/C2D partial blockages).
    pub fn add_macro(&mut self, mp: MacroPlacement, this_die: DieRole, halo: Dbu) {
        if mp.die == this_die {
            self.blockages.push(Blockage {
                rect: mp.rect.inflate(halo),
                kind: BlockageKind::Full,
            });
        }
        self.macros.push(mp);
    }

    /// Adds an explicit blockage.
    pub fn add_blockage(&mut self, rect: Rect, kind: BlockageKind) {
        self.blockages.push(Blockage { rect, kind });
    }

    /// Usable placement area inside `region`, µm² (area minus full
    /// blockages, partial blockages discounted by their factor).
    /// Overlapping blockages are handled conservatively (the most
    /// restrictive discount wins per blockage; overlaps may
    /// double-count, which only errs toward spreading cells out).
    pub fn usable_area_um2(&self, region: Rect) -> f64 {
        let Some(clipped) = region.intersection(self.die) else {
            return 0.0;
        };
        let mut area = clipped.area_um2();
        for b in &self.blockages {
            if let Some(i) = b.rect.intersection(clipped) {
                let lost = match b.kind {
                    BlockageKind::Full => i.area_um2(),
                    BlockageKind::Partial(f) => i.area_um2() * (1.0 - f),
                };
                area -= lost;
            }
        }
        area.max(0.0)
    }

    /// True if the rectangle is fully blocked at `p` (used by
    /// legality checks; partial blockages are handled via stripes).
    pub fn is_fully_blocked(&self, rect: Rect) -> bool {
        self.blockages
            .iter()
            .any(|b| matches!(b.kind, BlockageKind::Full) && b.rect.overlaps(rect))
    }

    /// Converts every partial blockage into full-blockage *stripes*
    /// with the given quantization period, replacing them in place.
    ///
    /// This models the coarse spatial resolution with which commercial
    /// 2D engines honour partial blockages — the paper's Sec. III
    /// observes that this quantization is what produces overlaps after
    /// S2D tier partitioning. A `period` of a few micrometres (many
    /// sites) is realistic.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    pub fn quantize_partial_blockages(&mut self, period: Dbu) {
        assert!(period.0 > 0, "stripe period must be positive");
        let mut stripes = Vec::new();
        self.blockages.retain(|b| match b.kind {
            BlockageKind::Full => true,
            BlockageKind::Partial(f) => {
                stripes.extend(stripe_rects(b.rect, f, period));
                false
            }
        });
        for rect in stripes {
            self.blockages.push(Blockage {
                rect,
                kind: BlockageKind::Full,
            });
        }
    }
}

/// Splits `rect` into vertical stripes of period `period`, blocking
/// the trailing `(1 - usable)` fraction of each stripe.
pub fn stripe_rects(rect: Rect, usable: f64, period: Dbu) -> Vec<Rect> {
    let mut out = Vec::new();
    let blocked_frac = (1.0 - usable).clamp(0.0, 1.0);
    if blocked_frac <= 0.0 {
        return out;
    }
    let blocked_w = Dbu((period.0 as f64 * blocked_frac).round() as i64);
    let mut x = rect.lo.x;
    while x < rect.hi.x {
        let stripe_end = (x + period).min(rect.hi.x);
        let block_start = (stripe_end - blocked_w).max(x);
        if block_start < stripe_end {
            out.push(Rect::new(
                Point::new(block_start, rect.lo.y),
                Point::new(stripe_end, rect.hi.y),
            ));
        }
        x = stripe_end;
    }
    out
}

/// Computes a near-square die rectangle of the given area with the
/// given aspect ratio (width / height), snapped to whole rows and
/// sites.
pub fn die_for_area(area_um2: f64, aspect: f64, row_height: Dbu, site_width: Dbu) -> Rect {
    let h_um = (area_um2 / aspect).sqrt();
    let w_um = area_um2 / h_um;
    let h = Dbu::from_um(h_um).ceil_to(row_height);
    let w = Dbu::from_um(w_um).ceil_to(site_width);
    Rect::from_origin_size(Point::ORIGIN, Size::new(w, h))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Floorplan {
        Floorplan::new(
            Rect::from_um(0.0, 0.0, 100.0, 120.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        )
    }

    #[test]
    fn rows() {
        let f = fp();
        assert_eq!(f.num_rows(), 100);
        assert_eq!(f.row_rect(0).lo, Point::ORIGIN);
        assert_eq!(f.row_rect(99).hi.y, Dbu::from_um(120.0));
    }

    #[test]
    fn usable_area_subtracts_blockages() {
        let mut f = fp();
        f.add_blockage(Rect::from_um(0.0, 0.0, 10.0, 10.0), BlockageKind::Full);
        f.add_blockage(
            Rect::from_um(50.0, 50.0, 60.0, 60.0),
            BlockageKind::Partial(0.5),
        );
        let total = f.usable_area_um2(f.die());
        assert!((total - (12_000.0 - 100.0 - 50.0)).abs() < 1.0);
        // region query clips
        let left = f.usable_area_um2(Rect::from_um(0.0, 0.0, 10.0, 10.0));
        assert!(left.abs() < 1e-9);
    }

    #[test]
    fn macro_blockage_only_on_same_die() {
        let mut f = fp();
        let mp = MacroPlacement {
            inst: InstId(0),
            rect: Rect::from_um(10.0, 10.0, 30.0, 30.0),
            die: DieRole::Macro,
        };
        f.add_macro(mp, DieRole::Logic, Dbu::from_um(1.0));
        assert!(f.blockages.is_empty(), "other-die macro adds no blockage");
        f.add_macro(
            MacroPlacement {
                inst: InstId(1),
                rect: Rect::from_um(40.0, 40.0, 50.0, 50.0),
                die: DieRole::Logic,
            },
            DieRole::Logic,
            Dbu::from_um(1.0),
        );
        assert_eq!(f.blockages.len(), 1);
        assert_eq!(f.blockages[0].rect, Rect::from_um(39.0, 39.0, 51.0, 51.0));
    }

    #[test]
    fn stripes_preserve_blocked_fraction() {
        let rect = Rect::from_um(0.0, 0.0, 40.0, 10.0);
        let stripes = stripe_rects(rect, 0.5, Dbu::from_um(4.0));
        let blocked: f64 = stripes.iter().map(|r| r.area_um2()).sum();
        assert!((blocked - 200.0).abs() < 1.0, "blocked {blocked}");
        // all stripes inside
        for s in &stripes {
            assert!(rect.contains_rect(*s));
        }
    }

    #[test]
    fn quantization_replaces_partials() {
        let mut f = fp();
        f.add_blockage(
            Rect::from_um(0.0, 0.0, 40.0, 10.0),
            BlockageKind::Partial(0.5),
        );
        let before = f.usable_area_um2(f.die());
        f.quantize_partial_blockages(Dbu::from_um(4.0));
        assert!(f
            .blockages
            .iter()
            .all(|b| matches!(b.kind, BlockageKind::Full)));
        let after = f.usable_area_um2(f.die());
        assert!((before - after).abs() < 2.0, "{before} vs {after}");
    }

    #[test]
    fn die_for_area_snaps() {
        let d = die_for_area(560_000.0, 1.0, Dbu::from_um(1.2), Dbu::from_um(0.2));
        assert!(d.area_um2() >= 560_000.0);
        assert_eq!(d.height().0 % Dbu::from_um(1.2).0, 0);
        assert_eq!(d.width().0 % Dbu::from_um(0.2).0, 0);
    }
}
