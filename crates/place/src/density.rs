//! Utilization maps, overlap checking, and the electrostatic density
//! model behind the analytical placer.
//!
//! The [`ElectroGrid`] implements the ePlace charge model: movable
//! cell area is deposited onto a uniform bin grid, blocked area enters
//! as fixed charge scaled to the target density, and the potential is
//! obtained from the Poisson equation `∇²ψ = −ρ'` (mean-subtracted
//! density, Neumann boundaries) via an FFT-free geometric multigrid
//! solver — weighted-Jacobi smoothing is order-independent, so the
//! solve is exactly reproducible. The negative potential gradient is
//! the electric field that pushes cells out of dense bins.

use crate::floorplan::Floorplan;
use crate::placement::Placement;
use macro3d_geom::{BinGrid, Dbu, Rect, RectIndex};
use macro3d_netlist::{Design, InstId};
use macro3d_par::{parallel_map, Parallelism};

/// Per-bin standard-cell utilization (cell area / usable bin area).
///
/// Bins with zero usable area report a utilization of `f64::INFINITY`
/// when occupied, `0.0` otherwise.
pub fn utilization_map(
    design: &Design,
    fp: &Floorplan,
    placement: &Placement,
    insts: &[InstId],
    grid: &BinGrid,
) -> Vec<f64> {
    let mut used = vec![0.0f64; grid.len()];
    for &i in insts {
        let r = placement.rect(design, i);
        if let Some((lo, hi)) = grid.bins_overlapping(r) {
            for y in lo.y..=hi.y {
                for x in lo.x..=hi.x {
                    let ix = macro3d_geom::BinIx::new(x, y);
                    let bin = grid.bin_rect(ix);
                    if let Some(ov) = bin.intersection(r) {
                        used[grid.flat(ix)] += ov.area_um2();
                    }
                }
            }
        }
    }
    grid.iter()
        .map(|ix| {
            let usable = fp.usable_area_um2(grid.bin_rect(ix));
            let u = used[grid.flat(ix)];
            if usable <= 0.0 {
                if u > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            } else {
                u / usable
            }
        })
        .collect()
}

/// Counts overlapping instance pairs among `insts` (zero after a
/// correct legalization).
pub fn count_overlaps(design: &Design, placement: &Placement, insts: &[InstId]) -> usize {
    if insts.is_empty() {
        return 0;
    }
    let mut bounds = Rect::empty();
    for &i in insts {
        bounds = bounds.union(placement.rect(design, i));
    }
    if bounds.is_empty() {
        return 0;
    }
    let bin = Dbu((bounds.width().0 / 64).max(1_000));
    let mut index: RectIndex<InstId> = RectIndex::new(bounds, bin);
    let mut overlaps = 0;
    for &i in insts {
        let r = placement.rect(design, i);
        overlaps += index.query(r).count();
        index.insert(r, i);
    }
    overlaps
}

/// Cells are deposited in fixed index chunks of this many cells, one
/// partial bin array per chunk, merged serially in chunk order. The
/// decomposition is independent of the thread count, so the f64 sums
/// see the same addition order for any [`Parallelism`].
const DENSITY_CHUNK: usize = 2048;

/// Jacobi damping factor (2/3 is the classic multigrid choice).
const JACOBI_OMEGA: f64 = 2.0 / 3.0;

/// The electrostatic bin grid of the analytical placer.
///
/// Uniform `nx × ny` bins over the die (power-of-two counts so the
/// multigrid hierarchy coarsens evenly). Bin geometry is kept in f64
/// µm: the solver never quantizes to [`Dbu`], positions are only
/// rounded once at the end of global placement.
#[derive(Clone, Debug)]
pub struct ElectroGrid {
    nx: usize,
    ny: usize,
    lo_x: f64,
    lo_y: f64,
    hx: f64,
    hy: f64,
    /// Usable (unblocked) area per bin, µm².
    usable: Vec<f64>,
    /// Fixed charge per bin: blocked area scaled by the target
    /// density, so a placement at exactly the target density over the
    /// free area produces a constant total density and zero field.
    fixed: Vec<f64>,
    /// Target density: 2× (movable area / usable area), clamped to
    /// `[0.15, 1.0]` — see [`ElectroGrid::build`].
    target: f64,
    /// Total movable cell area, µm² (overflow normalizer).
    total_movable: f64,
}

impl ElectroGrid {
    /// Builds the grid for a floorplan and movable-area total. Bin
    /// counts scale with `n_cells` (a handful of cells per bin) and
    /// are clamped to `[8, 64]` per axis.
    pub fn build(fp: &Floorplan, n_cells: usize, total_movable_um2: f64) -> Self {
        let side = ((n_cells as f64).sqrt() / 2.0).max(1.0) as usize;
        let side = side.next_power_of_two().clamp(8, 64);
        let die = fp.die();
        let (lo_x, lo_y) = (die.lo.x.to_um(), die.lo.y.to_um());
        let hx = die.width().to_um() / side as f64;
        let hy = die.height().to_um() / side as f64;
        let mut usable = Vec::with_capacity(side * side);
        for j in 0..side {
            for i in 0..side {
                let r = Rect::from_um(
                    lo_x + i as f64 * hx,
                    lo_y + j as f64 * hy,
                    lo_x + (i + 1) as f64 * hx,
                    lo_y + (j + 1) as f64 * hy,
                );
                usable.push(fp.usable_area_um2(r).max(0.0));
            }
        }
        let total_usable: f64 = usable.iter().sum();
        // Target density is *twice* the raw utilization (floored):
        // demanding bins at exactly the utilization would require a
        // perfectly uniform spread, which bin-granular density can
        // never reach on low-utilization designs — overflow would
        // plateau at the Poisson fluctuation level and the density
        // weight would grow without bound. Doubling gives each bin
        // headroom for natural clustering while still forcing the
        // placement apart.
        let target = if total_usable > 0.0 {
            (2.0 * total_movable_um2 / total_usable).clamp(0.15, 1.0)
        } else {
            1.0
        };
        let bin_area = hx * hy;
        let fixed = usable
            .iter()
            .map(|&u| target * (bin_area - u).max(0.0))
            .collect();
        ElectroGrid {
            nx: side,
            ny: side,
            lo_x,
            lo_y,
            hx,
            hy,
            usable,
            fixed,
            target,
            total_movable: total_movable_um2,
        }
    }

    /// Bins per axis.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Nominal bin width, µm.
    pub fn bin_w_um(&self) -> f64 {
        self.hx
    }

    /// Nominal bin height, µm.
    pub fn bin_h_um(&self) -> f64 {
        self.hy
    }

    /// Target density (movable area over usable area, clamped).
    pub fn target_density(&self) -> f64 {
        self.target
    }

    /// Deposits movable cell area into the bins. `pos` interleaves
    /// cell centres as `[x0, y0, x1, y1, …]` µm; `w`/`h` are the cell
    /// footprints, µm. Chunk decomposition and merge order are fixed
    /// (2048-cell chunks, partial bin arrays merged serially in
    /// chunk order), so the result is bit-identical for any thread
    /// count.
    pub fn accumulate(&self, w: &[f64], h: &[f64], pos: &[f64], par: &Parallelism) -> Vec<f64> {
        let n = w.len();
        let chunks: Vec<(usize, usize)> = (0..n)
            .step_by(DENSITY_CHUNK)
            .map(|s| (s, (s + DENSITY_CHUNK).min(n)))
            .collect();
        let partials = parallel_map(&chunks, par, |_, &(start, end)| {
            let mut bins = vec![0.0f64; self.nx * self.ny];
            for k in start..end {
                self.deposit(&mut bins, pos[2 * k], pos[2 * k + 1], w[k], h[k]);
            }
            bins
        });
        let mut bins = vec![0.0f64; self.nx * self.ny];
        for part in partials {
            for (b, p) in bins.iter_mut().zip(part) {
                *b += p;
            }
        }
        bins
    }

    /// Splats one cell's exact rectangle overlap over the bins it
    /// touches (cells are small relative to bins, so this is 1–4
    /// bins in practice).
    fn deposit(&self, bins: &mut [f64], cx: f64, cy: f64, w: f64, h: f64) {
        let (x0, x1) = (cx - w / 2.0 - self.lo_x, cx + w / 2.0 - self.lo_x);
        let (y0, y1) = (cy - h / 2.0 - self.lo_y, cy + h / 2.0 - self.lo_y);
        let i0 = ((x0 / self.hx).floor().max(0.0) as usize).min(self.nx - 1);
        let i1 = ((x1 / self.hx).floor().max(0.0) as usize).min(self.nx - 1);
        let j0 = ((y0 / self.hy).floor().max(0.0) as usize).min(self.ny - 1);
        let j1 = ((y1 / self.hy).floor().max(0.0) as usize).min(self.ny - 1);
        for j in j0..=j1 {
            let oy = (y1.min((j + 1) as f64 * self.hy) - y0.max(j as f64 * self.hy)).max(0.0);
            for i in i0..=i1 {
                let ox = (x1.min((i + 1) as f64 * self.hx) - x0.max(i as f64 * self.hx)).max(0.0);
                bins[j * self.nx + i] += ox * oy;
            }
        }
    }

    /// Density overflow: movable area beyond `target × usable` summed
    /// over bins, normalized by the total movable area. `0` means the
    /// placement fits everywhere; `~1` means everything is piled up.
    pub fn overflow(&self, movable: &[f64]) -> f64 {
        if self.total_movable <= 0.0 {
            return 0.0;
        }
        let over: f64 = movable
            .iter()
            .zip(&self.usable)
            .map(|(&m, &u)| (m - self.target * u).max(0.0))
            .sum();
        over / self.total_movable
    }

    /// Solves `∇²ψ = −ρ'` for the potential, where `ρ` is the total
    /// (movable + fixed) density and `ρ'` its mean-subtracted version
    /// (the Neumann compatibility condition). Returns `ψ` per bin.
    pub fn potential(&self, movable: &[f64]) -> Vec<f64> {
        let bin_area = self.hx * self.hy;
        let mut rhs: Vec<f64> = movable
            .iter()
            .zip(&self.fixed)
            .map(|(&m, &f)| (m + f) / bin_area)
            .collect();
        let mean = rhs.iter().sum::<f64>() / rhs.len() as f64;
        for r in &mut rhs {
            *r -= mean;
        }
        let mut psi = vec![0.0f64; rhs.len()];
        for _ in 0..2 {
            vcycle(&mut psi, &rhs, self.nx, self.ny, self.hx, self.hy);
        }
        let mean = psi.iter().sum::<f64>() / psi.len() as f64;
        for p in &mut psi {
            *p -= mean;
        }
        psi
    }

    /// Electric field `E = −∇ψ` per bin (central differences inside,
    /// one-sided at the boundary).
    pub fn field(&self, psi: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let (nx, ny) = (self.nx, self.ny);
        let mut ex = vec![0.0f64; nx * ny];
        let mut ey = vec![0.0f64; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                let at = j * nx + i;
                let (w, e, dx) = match i {
                    0 => (at, at + 1, self.hx),
                    _ if i == nx - 1 => (at - 1, at, self.hx),
                    _ => (at - 1, at + 1, 2.0 * self.hx),
                };
                ex[at] = -(psi[e] - psi[w]) / dx;
                let (s, n, dy) = match j {
                    0 => (at, at + nx, self.hy),
                    _ if j == ny - 1 => (at - nx, at, self.hy),
                    _ => (at - nx, at + nx, 2.0 * self.hy),
                };
                ey[at] = -(psi[n] - psi[s]) / dy;
            }
        }
        (ex, ey)
    }

    /// Bilinear interpolation of a bin-centred scalar map at a point.
    pub fn sample(&self, map: &[f64], x: f64, y: f64) -> f64 {
        let gx = ((x - self.lo_x) / self.hx - 0.5).clamp(0.0, (self.nx - 1) as f64);
        let gy = ((y - self.lo_y) / self.hy - 0.5).clamp(0.0, (self.ny - 1) as f64);
        let i0 = (gx as usize).min(self.nx.saturating_sub(2));
        let j0 = (gy as usize).min(self.ny.saturating_sub(2));
        let i1 = (i0 + 1).min(self.nx - 1);
        let j1 = (j0 + 1).min(self.ny - 1);
        let (fx, fy) = (gx - i0 as f64, gy - j0 as f64);
        let v00 = map[j0 * self.nx + i0];
        let v10 = map[j0 * self.nx + i1];
        let v01 = map[j1 * self.nx + i0];
        let v11 = map[j1 * self.nx + i1];
        v00 * (1.0 - fx) * (1.0 - fy)
            + v10 * fx * (1.0 - fy)
            + v01 * (1.0 - fx) * fy
            + v11 * fx * fy
    }
}

/// One multigrid V-cycle for `∇²ψ = −rhs`… expressed as the residual
/// equation `A ψ = rhs` with `A = −∇²` (SPD up to the Neumann null
/// space, which the mean subtraction removes).
fn vcycle(psi: &mut [f64], rhs: &[f64], nx: usize, ny: usize, hx: f64, hy: f64) {
    if nx <= 4 || ny <= 4 {
        smooth(psi, rhs, nx, ny, hx, hy, 64);
        return;
    }
    smooth(psi, rhs, nx, ny, hx, hy, 4);
    let res = residual(psi, rhs, nx, ny, hx, hy);
    let coarse_rhs = restrict(&res, nx, ny);
    let mut coarse = vec![0.0f64; coarse_rhs.len()];
    vcycle(&mut coarse, &coarse_rhs, nx / 2, ny / 2, hx * 2.0, hy * 2.0);
    prolong_add(psi, &coarse, nx, ny);
    smooth(psi, rhs, nx, ny, hx, hy, 4);
}

/// Mirrored-ghost (Neumann) neighbour lookup.
#[inline]
fn at(v: &[f64], nx: usize, ny: usize, i: isize, j: isize) -> f64 {
    let i = i.clamp(0, nx as isize - 1) as usize;
    let j = j.clamp(0, ny as isize - 1) as usize;
    v[j * nx + i]
}

/// `sweeps` damped-Jacobi iterations. Jacobi reads only the previous
/// iterate, so the result is independent of traversal order — the
/// property that makes the whole solve deterministic.
fn smooth(psi: &mut [f64], rhs: &[f64], nx: usize, ny: usize, hx: f64, hy: f64, sweeps: usize) {
    let (cx, cy) = (1.0 / (hx * hx), 1.0 / (hy * hy));
    let diag = 2.0 * (cx + cy);
    let mut next = vec![0.0f64; psi.len()];
    for _ in 0..sweeps {
        for j in 0..ny as isize {
            for i in 0..nx as isize {
                let k = j as usize * nx + i as usize;
                let nb = cx * (at(psi, nx, ny, i - 1, j) + at(psi, nx, ny, i + 1, j))
                    + cy * (at(psi, nx, ny, i, j - 1) + at(psi, nx, ny, i, j + 1));
                let jacobi = (nb + rhs[k]) / diag;
                next[k] = psi[k] + JACOBI_OMEGA * (jacobi - psi[k]);
            }
        }
        psi.copy_from_slice(&next);
    }
}

/// Residual `rhs − A ψ` with `A = −∇²` under mirrored boundaries.
fn residual(psi: &[f64], rhs: &[f64], nx: usize, ny: usize, hx: f64, hy: f64) -> Vec<f64> {
    let (cx, cy) = (1.0 / (hx * hx), 1.0 / (hy * hy));
    let diag = 2.0 * (cx + cy);
    let mut res = vec![0.0f64; psi.len()];
    for j in 0..ny as isize {
        for i in 0..nx as isize {
            let k = j as usize * nx + i as usize;
            let nb = cx * (at(psi, nx, ny, i - 1, j) + at(psi, nx, ny, i + 1, j))
                + cy * (at(psi, nx, ny, i, j - 1) + at(psi, nx, ny, i, j + 1));
            res[k] = rhs[k] - (diag * psi[k] - nb);
        }
    }
    res
}

/// Full-weighting restriction: each coarse bin averages its 2×2 fine
/// children (dims are powers of two, so the split is exact).
fn restrict(fine: &[f64], nx: usize, ny: usize) -> Vec<f64> {
    let (cnx, cny) = (nx / 2, ny / 2);
    let mut coarse = vec![0.0f64; cnx * cny];
    for j in 0..cny {
        for i in 0..cnx {
            let f = |di: usize, dj: usize| fine[(2 * j + dj) * nx + 2 * i + di];
            coarse[j * cnx + i] = 0.25 * (f(0, 0) + f(1, 0) + f(0, 1) + f(1, 1));
        }
    }
    coarse
}

/// Piecewise-constant prolongation (injection): each coarse value is
/// added to its 2×2 fine children; the post-smooth irons out the
/// blockiness.
fn prolong_add(fine: &mut [f64], coarse: &[f64], nx: usize, _ny: usize) {
    let cnx = nx / 2;
    for (k, &c) in coarse.iter().enumerate() {
        let (i, j) = (k % cnx, k / cnx);
        for dj in 0..2 {
            for di in 0..2 {
                fine[(2 * j + dj) * nx + 2 * i + di] += c;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_geom::Point;
    use macro3d_tech::{libgen::n28_library, CellClass};
    use std::sync::Arc;

    fn three_cells() -> (Design, Vec<InstId>, Placement) {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib);
        let insts: Vec<InstId> = (0..3).map(|i| d.add_cell(format!("c{i}"), inv)).collect();
        let p = Placement::new(&d);
        (d, insts, p)
    }

    #[test]
    fn overlap_counting() {
        let (d, insts, mut p) = three_cells();
        // all at origin: 3 pairwise overlaps
        assert_eq!(count_overlaps(&d, &p, &insts), 3);
        p.pos[insts[1].index()] = Point::from_um(10.0, 0.0);
        p.pos[insts[2].index()] = Point::from_um(20.0, 0.0);
        assert_eq!(count_overlaps(&d, &p, &insts), 0);
    }

    #[test]
    fn electro_field_pushes_away_from_pile() {
        let fp = Floorplan::new(
            Rect::from_um(0.0, 0.0, 64.0, 64.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        );
        // 1000 unit cells piled in the lower-left corner
        let n = 1000usize;
        let (w, h): (Vec<f64>, Vec<f64>) = (vec![1.0; n], vec![1.0; n]);
        let mut pos = Vec::with_capacity(2 * n);
        for k in 0..n {
            pos.push(8.0 + (k % 10) as f64 * 0.1);
            pos.push(8.0 + (k / 10) as f64 * 0.01);
        }
        let grid = ElectroGrid::build(&fp, n, n as f64);
        let bins = grid.accumulate(&w, &h, &pos, &Parallelism::serial());
        assert!((bins.iter().sum::<f64>() - n as f64).abs() < 1e-6);
        assert!(grid.overflow(&bins) > 0.5, "pile should overflow");
        let psi = grid.potential(&bins);
        let (ex, ey) = grid.field(&psi);
        // the field at a point right of the pile points further right
        // (away from the charge), and up above it points further up
        assert!(grid.sample(&ex, 30.0, 8.0) > 0.0);
        assert!(grid.sample(&ey, 8.0, 30.0) > 0.0);
        // uniform spread at target density ⇒ (near) zero overflow
        let mut spread = Vec::with_capacity(2 * n);
        for k in 0..n {
            spread.push(64.0 * ((k % 32) as f64 + 0.5) / 32.0);
            spread.push(64.0 * ((k / 32) as f64 + 0.5) / 32.0);
        }
        let bins = grid.accumulate(&w, &h, &spread, &Parallelism::serial());
        assert!(grid.overflow(&bins) < 0.05);
    }

    #[test]
    fn electro_accumulate_thread_count_invariant() {
        let fp = Floorplan::new(
            Rect::from_um(0.0, 0.0, 100.0, 50.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        );
        let n = 5000usize;
        let (w, h): (Vec<f64>, Vec<f64>) = (vec![0.7; n], vec![1.2; n]);
        let mut x = 99u64;
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 33) as f64 / (1u64 << 31) as f64
        };
        let pos: Vec<f64> = (0..2 * n)
            .map(|k| next() * if k % 2 == 0 { 100.0 } else { 50.0 })
            .collect();
        let grid = ElectroGrid::build(&fp, n, 0.84 * n as f64);
        let serial = grid.accumulate(&w, &h, &pos, &Parallelism::serial());
        for threads in [2, 8] {
            let par = Parallelism::threads(threads);
            let got = grid.accumulate(&w, &h, &pos, &par);
            assert!(
                serial
                    .iter()
                    .zip(&got)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads}: density bins differ bitwise"
            );
        }
    }

    #[test]
    fn poisson_recovers_smooth_potential() {
        // A smooth separable density on a square grid: the multigrid
        // solution must drive the residual far below the RHS norm.
        let fp = Floorplan::new(
            Rect::from_um(0.0, 0.0, 32.0, 32.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        );
        let grid = ElectroGrid::build(&fp, 4096, 100.0);
        let (nx, ny) = grid.dims();
        let mut rhs = vec![0.0f64; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                let fx = (i as f64 + 0.5) / nx as f64;
                let fy = (j as f64 + 0.5) / ny as f64;
                rhs[j * nx + i] =
                    (std::f64::consts::PI * fx).cos() * (std::f64::consts::PI * fy).cos();
            }
        }
        let mean = rhs.iter().sum::<f64>() / rhs.len() as f64;
        for r in &mut rhs {
            *r -= mean;
        }
        let mut psi = vec![0.0f64; rhs.len()];
        for _ in 0..4 {
            vcycle(&mut psi, &rhs, nx, ny, grid.bin_w_um(), grid.bin_h_um());
        }
        let res = residual(&psi, &rhs, nx, ny, grid.bin_w_um(), grid.bin_h_um());
        let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(
            norm(&res) < 0.05 * norm(&rhs),
            "residual {} vs rhs {}",
            norm(&res),
            norm(&rhs)
        );
    }

    #[test]
    fn utilization_reflects_area() {
        let (d, insts, mut p) = three_cells();
        let fp = Floorplan::new(
            Rect::from_um(0.0, 0.0, 20.0, 20.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        );
        for (k, &i) in insts.iter().enumerate() {
            p.pos[i.index()] = Point::from_um(1.0 + k as f64, 1.0);
        }
        let grid = BinGrid::with_counts(fp.die(), 2, 2);
        let map = utilization_map(&d, &fp, &p, &insts, &grid);
        assert!(map[0] > 0.0, "cells occupy the lower-left bin");
        assert_eq!(map[3], 0.0, "upper-right bin is empty");
    }
}
