//! Utilization maps and overlap checking.

use crate::floorplan::Floorplan;
use crate::placement::Placement;
use macro3d_geom::{BinGrid, Dbu, Rect, RectIndex};
use macro3d_netlist::{Design, InstId};

/// Per-bin standard-cell utilization (cell area / usable bin area).
///
/// Bins with zero usable area report a utilization of `f64::INFINITY`
/// when occupied, `0.0` otherwise.
pub fn utilization_map(
    design: &Design,
    fp: &Floorplan,
    placement: &Placement,
    insts: &[InstId],
    grid: &BinGrid,
) -> Vec<f64> {
    let mut used = vec![0.0f64; grid.len()];
    for &i in insts {
        let r = placement.rect(design, i);
        if let Some((lo, hi)) = grid.bins_overlapping(r) {
            for y in lo.y..=hi.y {
                for x in lo.x..=hi.x {
                    let ix = macro3d_geom::BinIx::new(x, y);
                    let bin = grid.bin_rect(ix);
                    if let Some(ov) = bin.intersection(r) {
                        used[grid.flat(ix)] += ov.area_um2();
                    }
                }
            }
        }
    }
    grid.iter()
        .map(|ix| {
            let usable = fp.usable_area_um2(grid.bin_rect(ix));
            let u = used[grid.flat(ix)];
            if usable <= 0.0 {
                if u > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                }
            } else {
                u / usable
            }
        })
        .collect()
}

/// Counts overlapping instance pairs among `insts` (zero after a
/// correct legalization).
pub fn count_overlaps(design: &Design, placement: &Placement, insts: &[InstId]) -> usize {
    if insts.is_empty() {
        return 0;
    }
    let mut bounds = Rect::empty();
    for &i in insts {
        bounds = bounds.union(placement.rect(design, i));
    }
    if bounds.is_empty() {
        return 0;
    }
    let bin = Dbu((bounds.width().0 / 64).max(1_000));
    let mut index: RectIndex<InstId> = RectIndex::new(bounds, bin);
    let mut overlaps = 0;
    for &i in insts {
        let r = placement.rect(design, i);
        overlaps += index.query(r).count();
        index.insert(r, i);
    }
    overlaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_geom::Point;
    use macro3d_tech::{libgen::n28_library, CellClass};
    use std::sync::Arc;

    fn three_cells() -> (Design, Vec<InstId>, Placement) {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib);
        let insts: Vec<InstId> = (0..3).map(|i| d.add_cell(format!("c{i}"), inv)).collect();
        let p = Placement::new(&d);
        (d, insts, p)
    }

    #[test]
    fn overlap_counting() {
        let (d, insts, mut p) = three_cells();
        // all at origin: 3 pairwise overlaps
        assert_eq!(count_overlaps(&d, &p, &insts), 3);
        p.pos[insts[1].index()] = Point::from_um(10.0, 0.0);
        p.pos[insts[2].index()] = Point::from_um(20.0, 0.0);
        assert_eq!(count_overlaps(&d, &p, &insts), 0);
    }

    #[test]
    fn utilization_reflects_area() {
        let (d, insts, mut p) = three_cells();
        let fp = Floorplan::new(
            Rect::from_um(0.0, 0.0, 20.0, 20.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        );
        for (k, &i) in insts.iter().enumerate() {
            p.pos[i.index()] = Point::from_um(1.0 + k as f64, 1.0);
        }
        let grid = BinGrid::with_counts(fp.die(), 2, 2);
        let map = utilization_map(&d, &fp, &p, &insts, &grid);
        assert!(map[0] > 0.0, "cells occupy the lower-left bin");
        assert_eq!(map[3], 0.0, "upper-right bin is empty");
    }
}
