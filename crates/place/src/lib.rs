#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! Floorplanning and standard-cell placement engine.
//!
//! This crate is the "2D P&R engine" front half that every flow in the
//! reproduction shares (the paper's flows all drive the *same*
//! commercial placer; here they all drive this one):
//!
//! * [`floorplan`] — die/core area, standard-cell rows, and placement
//!   blockages, including *partial* blockages with the coarse spatial
//!   quantization that commercial tools exhibit (the S2D failure
//!   mechanism from the paper's Sec. III);
//! * [`macro_place`] — deterministic shelf/ring macro packing for the
//!   2D periphery floorplan, the macro-die grid, and the
//!   balanced-overlap (BF) variant;
//! * [`ports`] — port location assignment on die edges honouring the
//!   inter-tile alignment pairs;
//! * [`partition`] — Fiduccia–Mattheyses bipartitioning, used both by
//!   recursive-bisection global placement and by the S2D/C2D tier
//!   partitioning step;
//! * [`global`] — global placement dispatch over two backends:
//!   recursive min-cut bisection with terminal propagation and
//!   blockage-aware capacity, and the ePlace-style
//!   [`analytical`] electrostatic placer;
//! * [`analytical`] / [`nesterov`] — analytical global placement:
//!   weighted-average wirelength with analytic gradients, a
//!   multigrid-Poisson charge-density field ([`density`]), and a
//!   Nesterov solver with Lipschitz step estimation — every hot
//!   kernel runs through `macro3d-par` and is bit-identical for any
//!   thread count;
//! * [`mod@legalize`] — row legalization: Tetris-style first-fit
//!   (reports displacement, the quantity that blows up when S2D
//!   unshrinks) and Abacus-style cluster collapse for the analytical
//!   backend's smooth spreads;
//! * [`detailed`] — greedy swap refinement;
//! * [`density`] / [`hpwl`] — utilization, the electrostatic bin
//!   grid, and wirelength metrics.

pub mod analytical;
pub mod density;
pub mod detailed;
pub mod floorplan;
pub mod global;
pub mod hpwl;
pub mod legalize;
pub mod macro_anneal;
pub mod macro_place;
pub mod nesterov;
pub mod partition;
pub mod placement;
pub mod ports;

pub use analytical::{analytical_place, AnalyticalConfig};
pub use density::ElectroGrid;
pub use floorplan::{Blockage, BlockageKind, Floorplan, MacroPlacement};
pub use global::{global_place, GlobalPlaceConfig, PlacerBackend};
pub use hpwl::{net_hpwl, pin_position, total_hpwl, HpwlCache, HpwlUndo};
pub use legalize::{legalize, legalize_abacus, LegalizeReport};
pub use placement::Placement;
pub use ports::PortPlan;
