//! Placement state.

use macro3d_geom::{Orientation, Point, Rect};
use macro3d_netlist::{Design, InstId};
use macro3d_tech::stack::DieRole;

/// Physical placement of every instance of a design.
///
/// Positions are lower-left corners. `die_of` records the tier an
/// instance is assigned to — always [`DieRole::Logic`] for 2D designs
/// and for all standard cells in Macro-3D MoL designs; the S2D/C2D
/// baselines partition cells across both dies.
#[derive(Clone, Debug)]
pub struct Placement {
    /// Lower-left corner per instance.
    pub pos: Vec<Point>,
    /// Orientation per instance.
    pub orient: Vec<Orientation>,
    /// Tier per instance.
    pub die_of: Vec<DieRole>,
}

impl Placement {
    /// All instances at the origin on the logic die.
    pub fn new(design: &Design) -> Self {
        let n = design.num_insts();
        Placement {
            pos: vec![Point::ORIGIN; n],
            orient: vec![Orientation::N; n],
            die_of: vec![DieRole::Logic; n],
        }
    }

    /// Footprint rectangle of an instance.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is out of range for the placement or design.
    pub fn rect(&self, design: &Design, inst: InstId) -> Rect {
        let size = match design.inst(inst).master {
            macro3d_netlist::Master::Cell(c) => design.library().cell(c).size,
            macro3d_netlist::Master::Macro(m) => design.macro_master(m).size,
        };
        let size = if self.orient[inst.index()].swaps_extent() {
            size.transposed()
        } else {
            size
        };
        Rect::from_origin_size(self.pos[inst.index()], size)
    }

    /// Center of an instance.
    pub fn center(&self, design: &Design, inst: InstId) -> Point {
        self.rect(design, inst).center()
    }

    /// Instances on a given die.
    pub fn insts_on<'a>(
        &'a self,
        design: &'a Design,
        die: DieRole,
    ) -> impl Iterator<Item = InstId> + 'a {
        design
            .inst_ids()
            .filter(move |i| self.die_of[i.index()] == die)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_geom::Dbu;
    use macro3d_tech::{libgen::n28_library, CellClass};
    use std::sync::Arc;

    #[test]
    fn rect_and_center() {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib.clone());
        let a = d.add_cell("a", inv);
        let mut p = Placement::new(&d);
        p.pos[a.index()] = Point::from_um(10.0, 12.0);
        let r = p.rect(&d, a);
        assert_eq!(r.lo, Point::from_um(10.0, 12.0));
        assert_eq!(r.size(), lib.cell(inv).size);
        assert!(r.contains(p.center(&d, a)));
    }

    #[test]
    fn orientation_swaps_macro_extent() {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib);
        let mm = d.add_macro_master(macro3d_sram::MemoryCompiler::n28().sram("s", 512, 64));
        let m = d.add_macro_in("m", mm, 0);
        let mut p = Placement::new(&d);
        let r_n = p.rect(&d, m);
        p.orient[m.index()] = macro3d_geom::Orientation::R90;
        let r_r = p.rect(&d, m);
        assert_eq!(r_n.width(), r_r.height());
        assert_eq!(r_n.height(), r_r.width());
        assert!(r_n.width() > Dbu(0));
    }

    #[test]
    fn die_filter() {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib);
        let a = d.add_cell("a", inv);
        let b = d.add_cell("b", inv);
        let mut p = Placement::new(&d);
        p.die_of[b.index()] = DieRole::Macro;
        let logic: Vec<_> = p.insts_on(&d, DieRole::Logic).collect();
        assert_eq!(logic, vec![a]);
        let upper: Vec<_> = p.insts_on(&d, DieRole::Macro).collect();
        assert_eq!(upper, vec![b]);
    }
}
