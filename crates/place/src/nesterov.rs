//! Nesterov accelerated gradient descent for analytical placement.
//!
//! The ePlace scheme: keep a *major* solution `u` and a *reference*
//! (lookahead) solution `v`; evaluate the gradient at `v`, take the
//! step `u' = v − α·g`, and extrapolate `v' = u' + θ·(u' − u)` with
//! the Nesterov momentum coefficient θ derived from the `a_k`
//! recurrence. The step length is the inverse-Lipschitz estimate
//! `α = ‖v − v_prev‖ / ‖g − g_prev‖` over *preconditioned* gradients
//! (Barzilai–Borwein flavour), clamped by a per-iteration trust
//! radius so a bad estimate cannot explode the placement.
//!
//! The position update — the only O(n) work here — runs through
//! [`parallel_map`] over the cell list; the norms and bookkeeping are
//! serial in fixed index order, so the whole solver is bit-identical
//! for any thread count.

use macro3d_par::{parallel_map, Parallelism};

/// Nesterov solver state over interleaved `[x0, y0, x1, y1, …]`
/// coordinate vectors.
#[derive(Clone, Debug)]
pub struct Nesterov {
    /// Major solution (best descent iterate; read this at the end).
    u: Vec<f64>,
    /// Reference solution (where gradients are evaluated).
    v: Vec<f64>,
    v_prev: Vec<f64>,
    g_prev: Vec<f64>,
    a: f64,
    /// Cell indices `0..n`, the item list for the update kernel.
    idx: Vec<u32>,
    have_prev: bool,
}

impl Nesterov {
    /// Starts from an initial placement (interleaved coordinates).
    pub fn new(init: Vec<f64>) -> Self {
        let n = init.len() / 2;
        Nesterov {
            u: init.clone(),
            v: init.clone(),
            v_prev: init.clone(),
            g_prev: vec![0.0; init.len()],
            a: 1.0,
            idx: (0..n as u32).collect(),
            have_prev: false,
        }
    }

    /// The reference solution — evaluate the gradient here.
    pub fn reference(&self) -> &[f64] {
        &self.v
    }

    /// The major solution — the placement to keep.
    pub fn solution(&self) -> &[f64] {
        &self.u
    }

    /// Inverse-Lipschitz step estimate from the previous reference
    /// point and gradient, or `None` on the first iteration.
    pub fn step_len(&self, g: &[f64]) -> Option<f64> {
        if !self.have_prev {
            return None;
        }
        let mut dv = 0.0f64;
        let mut dg = 0.0f64;
        for (k, &gk) in g.iter().enumerate() {
            let a = self.v[k] - self.v_prev[k];
            let b = gk - self.g_prev[k];
            dv += a * a;
            dg += b * b;
        }
        (dg > 0.0).then(|| (dv / dg).sqrt())
    }

    /// One Nesterov step with (preconditioned) gradient `g` evaluated
    /// at [`Self::reference`], step length `alpha`, and a position
    /// `clamp` (cell index, x, y) → (x, y) keeping cells inside the
    /// die. Scheduling only changes wall-clock time, never the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if `g.len()` differs from the coordinate vector length.
    pub fn step<F>(&mut self, g: &[f64], alpha: f64, clamp: &F, par: &Parallelism)
    where
        F: Fn(usize, f64, f64) -> (f64, f64) + Sync,
    {
        assert_eq!(g.len(), self.v.len(), "gradient length mismatch");
        let a_next = (1.0 + (4.0 * self.a * self.a + 1.0).sqrt()) / 2.0;
        let theta = (self.a - 1.0) / a_next;
        let (u, v) = (&self.u, &self.v);
        let updated = parallel_map(&self.idx, par, |_, &kk| {
            let k = kk as usize;
            let (xi, yi) = (2 * k, 2 * k + 1);
            let (ux, uy) = clamp(k, v[xi] - alpha * g[xi], v[yi] - alpha * g[yi]);
            let (vx, vy) = clamp(k, ux + theta * (ux - u[xi]), uy + theta * (uy - u[yi]));
            (ux, uy, vx, vy)
        });
        self.v_prev.copy_from_slice(&self.v);
        self.g_prev.copy_from_slice(g);
        for (k, (ux, uy, vx, vy)) in updated.into_iter().enumerate() {
            self.u[2 * k] = ux;
            self.u[2 * k + 1] = uy;
            self.v[2 * k] = vx;
            self.v[2 * k + 1] = vy;
        }
        self.a = a_next;
        self.have_prev = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize a separable quadratic Σ cᵢ(xᵢ − tᵢ)²: Nesterov with a
    /// BB step must converge to the target from any start.
    #[test]
    fn converges_on_quadratic() {
        let n = 64usize;
        let target: Vec<f64> = (0..2 * n).map(|k| (k % 7) as f64 - 3.0).collect();
        let coef: Vec<f64> = (0..2 * n).map(|k| 0.5 + (k % 3) as f64).collect();
        let mut nes = Nesterov::new(vec![10.0; 2 * n]);
        let par = Parallelism::serial();
        let clamp = |_k: usize, x: f64, y: f64| (x, y);
        for iter in 0..200 {
            let v = nes.reference().to_vec();
            let g: Vec<f64> = (0..2 * n)
                .map(|k| 2.0 * coef[k] * (v[k] - target[k]))
                .collect();
            let alpha = nes.step_len(&g).unwrap_or(0.05).min(0.45);
            nes.step(&g, alpha, &clamp, &par);
            let _ = iter;
        }
        let err: f64 = nes
            .solution()
            .iter()
            .zip(&target)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-3, "max error {err}");
    }

    #[test]
    fn update_is_thread_count_invariant() {
        let n = 500usize;
        let init: Vec<f64> = (0..2 * n).map(|k| (k as f64 * 0.37).sin() * 50.0).collect();
        let run = |threads: usize| {
            let par = Parallelism::threads(threads).with_chunk_size(13);
            let mut nes = Nesterov::new(init.clone());
            let clamp = |_k: usize, x: f64, y: f64| (x.clamp(-40.0, 40.0), y.clamp(-40.0, 40.0));
            for _ in 0..20 {
                let g: Vec<f64> = nes.reference().iter().map(|&x| 0.3 * x + 1.0).collect();
                let alpha = nes.step_len(&g).unwrap_or(0.1).min(1.0);
                nes.step(&g, alpha, &clamp, &par);
            }
            nes.solution()
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>()
        };
        let serial = run(1);
        assert_eq!(run(4), serial);
        assert_eq!(run(8), serial);
    }
}
