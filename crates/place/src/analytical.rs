//! ePlace-style analytical global placement.
//!
//! The second placer backend beside recursive bisection
//! ([`crate::global`]): cells are point charges whose area is spread
//! over the [`ElectroGrid`] bins, the Poisson potential of the
//! density field yields a spreading force, and a weighted-average
//! (WA) smooth wirelength supplies the attraction. The sum
//! `W(v) + λ·N(v)` is minimized by the Nesterov solver with the
//! inverse-Lipschitz step estimate and the ePlace preconditioner
//! (pin count + λ·charge per cell); λ grows geometrically until the
//! density overflow falls under the target.
//!
//! **Determinism.** Every hot kernel — WA net terms, per-cell
//! gradients with field interpolation, bin density accumulation, the
//! Nesterov position update — runs through the `macro3d-par` chunked
//! primitives over immutable snapshots of the iterate, and every
//! reduction (λ calibration, norms, HPWL) is a serial sum in fixed
//! index order. Results are bit-identical for any thread count
//! (`tests/analytical_determinism.rs`).
//!
//! **Budget/fault awareness.** The iteration loop polls
//! `checkpoint("place/nesterov_iters")`; exhaustion keeps the
//! best-so-far (major) solution and reports the degradation, exactly
//! like the router's rip-up loop.

use crate::density::ElectroGrid;
use crate::floorplan::Floorplan;
use crate::global::GlobalPlaceConfig;
use crate::hpwl::pin_position;
use crate::nesterov::Nesterov;
use crate::placement::Placement;
use crate::ports::PortPlan;
use macro3d_geom::{Dbu, Point};
use macro3d_netlist::{Design, InstId, Master};
use macro3d_par::{checkpoint, note_degradation, parallel_map, Checkpoint};

/// Knobs of the analytical backend (defaults follow ePlace).
#[derive(Clone, Copy, Debug)]
pub struct AnalyticalConfig {
    /// Nesterov iteration cap.
    pub max_iters: usize,
    /// Stop once density overflow falls below this fraction.
    pub target_overflow: f64,
    /// Geometric growth of the density weight λ per iteration.
    pub lambda_growth: f64,
}

impl Default for AnalyticalConfig {
    fn default() -> Self {
        AnalyticalConfig {
            max_iters: 512,
            target_overflow: 0.08,
            lambda_growth: 1.05,
        }
    }
}

/// Below this many movable cells the electrostatic model is
/// meaningless (a couple of charges on an 8×8 grid); recursive
/// bisection places tiny designs instead.
const MIN_ANALYTICAL_CELLS: usize = 16;

/// Damped-Jacobi sweeps of the star-model quadratic initial
/// placement (wirelength only, no density) run before the Nesterov
/// loop.
const INIT_SWEEPS: usize = 48;

static NESTEROV_ITERS: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("place/nesterov_iters");

/// One net as the WA kernels see it: movable pins by local cell
/// index (one entry per pin, so multi-pin cells count once per pin)
/// and fixed pins (ports, macro pins) as static coordinates.
struct NetInfo {
    movable: Vec<u32>,
    fixed: Vec<(f64, f64)>,
}

/// Per-axis WA terms of one net, shifted-exponential form.
#[derive(Clone, Copy, Default)]
struct Axis {
    max: f64,
    min: f64,
    /// Σ e^{(x−max)/γ} and Σ x·e^{(x−max)/γ}.
    dp: f64,
    np: f64,
    /// Σ e^{−(x−min)/γ} and Σ x·e^{−(x−min)/γ}.
    dm: f64,
    nm: f64,
}

impl Axis {
    fn compute(coords: impl Iterator<Item = f64> + Clone, gamma: f64) -> Axis {
        let mut ax = Axis {
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
            ..Axis::default()
        };
        for c in coords.clone() {
            ax.max = ax.max.max(c);
            ax.min = ax.min.min(c);
        }
        for c in coords {
            let ep = ((c - ax.max) / gamma).exp();
            let em = (-(c - ax.min) / gamma).exp();
            ax.dp += ep;
            ax.np += c * ep;
            ax.dm += em;
            ax.nm += c * em;
        }
        ax
    }

    /// ∂(WA span)/∂x at pin coordinate `c`.
    fn grad(&self, c: f64, gamma: f64) -> f64 {
        let ep = ((c - self.max) / gamma).exp();
        let em = (-(c - self.min) / gamma).exp();
        let plus = ep * (self.dp + (c * self.dp - self.np) / gamma) / (self.dp * self.dp);
        let minus = em * (self.dm - (c * self.dm - self.nm) / gamma) / (self.dm * self.dm);
        plus - minus
    }
}

/// Runs ePlace-style analytical global placement (see the module
/// docs). Same contract as [`crate::global::global_place`]: macros
/// are fixed from `fp.macros`, cells end up spread (overlapping) over
/// the usable area, ready for row legalization.
///
/// # Panics
///
/// Panics if a macro in `fp.macros` references an out-of-range
/// instance.
pub fn analytical_place(
    design: &Design,
    fp: &Floorplan,
    ports: &PortPlan,
    cfg: &GlobalPlaceConfig,
) -> Placement {
    let mut placement = Placement::new(design);
    for mp in &fp.macros {
        placement.pos[mp.inst.index()] = mp.rect.lo;
        placement.die_of[mp.inst.index()] = mp.die;
    }
    let movable: Vec<InstId> = design.inst_ids().filter(|&i| !design.is_macro(i)).collect();
    if movable.len() < MIN_ANALYTICAL_CELLS {
        return crate::global::bisection_place(design, fp, ports, cfg);
    }
    let n = movable.len();

    // local geometry snapshot (µm, f64)
    let mut local_of = vec![u32::MAX; design.num_insts()];
    let mut w = Vec::with_capacity(n);
    let mut h = Vec::with_capacity(n);
    let mut area = Vec::with_capacity(n);
    for (k, &i) in movable.iter().enumerate() {
        local_of[i.index()] = k as u32;
        let r = placement.rect(design, i);
        w.push(r.width().to_um());
        h.push(r.height().to_um());
        area.push(r.width().to_um() * r.height().to_um());
    }
    let total_area: f64 = area.iter().sum();
    let avg_area = total_area / n as f64;
    // normalized charge: the preconditioner and field force scale
    let charge: Vec<f64> = area.iter().map(|a| a / avg_area).collect();

    // nets with 2..=max_net_degree pins, movable/fixed split
    let mut nets: Vec<NetInfo> = Vec::new();
    let mut inst_nets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for nid in design.net_ids() {
        let pins = &design.net(nid).pins;
        if pins.len() < 2 || pins.len() > cfg.max_net_degree {
            continue;
        }
        let mut info = NetInfo {
            movable: Vec::new(),
            fixed: Vec::new(),
        };
        for &p in pins {
            let is_movable_cell = p
                .instance()
                .map(|i| matches!(design.inst(i).master, Master::Cell(_)))
                .unwrap_or(false);
            if is_movable_cell {
                let k = local_of[p.instance().map(InstId::index).unwrap_or(0)];
                info.movable.push(k);
            } else {
                let pt = pin_position(design, &placement, ports, p);
                info.fixed.push((pt.x.to_um(), pt.y.to_um()));
            }
        }
        if info.movable.is_empty() {
            continue;
        }
        let t = nets.len() as u32;
        for &k in &info.movable {
            inst_nets[k as usize].push(t);
        }
        nets.push(info);
    }
    let npins: Vec<f64> = inst_nets.iter().map(|v| v.len() as f64).collect();

    let grid = ElectroGrid::build(fp, n, total_area);
    let die = fp.die();
    let (die_lo_x, die_lo_y) = (die.lo.x.to_um(), die.lo.y.to_um());
    let (die_hi_x, die_hi_y) = (die.hi.x.to_um(), die.hi.y.to_um());
    let bin = 0.5 * (grid.bin_w_um() + grid.bin_h_um());

    // initial state: die centre plus a deterministic per-cell jitter
    // (splitmix64 of the cell index) to break the radial symmetry
    let (cx0, cy0) = (0.5 * (die_lo_x + die_hi_x), 0.5 * (die_lo_y + die_hi_y));
    let (jx, jy) = (0.125 * (die_hi_x - die_lo_x), 0.125 * (die_hi_y - die_lo_y));
    let mut init = Vec::with_capacity(2 * n);
    for k in 0..n {
        let r = splitmix64(k as u64 + 1);
        let ux = (r >> 32) as f64 / (1u64 << 32) as f64 - 0.5;
        let uy = (r & 0xFFFF_FFFF) as f64 / (1u64 << 32) as f64 - 0.5;
        init.push(cx0 + 2.0 * jx * ux);
        init.push(cy0 + 2.0 * jy * uy);
    }
    let clamp = |k: usize, x: f64, y: f64| {
        (
            x.clamp(die_lo_x + w[k] / 2.0, die_hi_x - w[k] / 2.0),
            y.clamp(die_lo_y + h[k] / 2.0, die_hi_y - h[k] / 2.0),
        )
    };
    for k in 0..n {
        let (x, y) = clamp(k, init[2 * k], init[2 * k + 1]);
        init[2 * k] = x;
        init[2 * k + 1] = y;
    }

    let par = cfg.parallelism;

    // Quadratic wirelength-only initial placement (star model, damped
    // Jacobi): each sweep computes every net's pin centroid, then
    // moves every cell halfway to the mean centroid of its nets.
    // Fixed pins (macros, ports) anchor the system, so the sweeps
    // drag each cell next to the logic it talks to before any density
    // force exists. Without this the density phase on a sparse die
    // reaches its overflow target within a few dozen iterations of
    // pure radial spreading and exits with the wirelength never
    // optimized. Both sweeps are order-preserving `parallel_map`s
    // with serial fixed-order inner sums — bit-identical for any
    // thread count.
    for _ in 0..INIT_SWEEPS {
        let centroids: Vec<(f64, f64)> = parallel_map(&nets, &par, |_, net| {
            let (mut sx, mut sy) = (0.0f64, 0.0f64);
            for &k in &net.movable {
                sx += init[2 * k as usize];
                sy += init[2 * k as usize + 1];
            }
            for &(x, y) in &net.fixed {
                sx += x;
                sy += y;
            }
            let m = (net.movable.len() + net.fixed.len()) as f64;
            (sx / m, sy / m)
        });
        let next: Vec<(f64, f64)> = parallel_map(&inst_nets, &par, |k, incident| {
            if incident.is_empty() {
                return (init[2 * k], init[2 * k + 1]);
            }
            let (mut sx, mut sy) = (0.0f64, 0.0f64);
            for &t in incident {
                let (cx, cy) = centroids[t as usize];
                sx += cx;
                sy += cy;
            }
            let m = incident.len() as f64;
            clamp(
                k,
                0.5 * (init[2 * k] + sx / m),
                0.5 * (init[2 * k + 1] + sy / m),
            )
        });
        for (k, &(x, y)) in next.iter().enumerate() {
            init[2 * k] = x;
            init[2 * k + 1] = y;
        }
    }
    let acfg = cfg.analytical;
    let mut nes = Nesterov::new(init);
    let mut lambda = 0.0f64; // calibrated after the first gradient
    let mut grad = vec![0.0f64; 2 * n];
    let mut best_overflow = f64::INFINITY;
    let mut stale = 0usize;

    for iter in 0..acfg.max_iters {
        if let Checkpoint::Stop(reason) = checkpoint("place/nesterov_iters") {
            note_degradation(
                "place/nesterov_iters",
                reason,
                format!("stopped at Nesterov iteration {iter} of {}", acfg.max_iters),
            );
            break;
        }
        let _iter_span = macro3d_obs::span_full!("place/nes_iter{iter}");
        NESTEROV_ITERS.inc();

        let pos = nes.reference();

        // density: accumulate → overflow → potential → field
        let bins = grid.accumulate(&w, &h, pos, &par);
        let overflow = grid.overflow(&bins);
        let psi = grid.potential(&bins);
        let (ex, ey) = grid.field(&psi);

        // WA smoothing follows the overflow: coarse while the
        // placement is piled up, sharp as it spreads out
        let gamma = bin * (0.5 + 7.5 * overflow.min(1.0));

        // kernel 1: per-net WA terms (+ exact span for HPWL)
        let terms: Vec<(Axis, Axis)> = parallel_map(&nets, &par, |_, net| {
            let xs = net
                .movable
                .iter()
                .map(|&k| pos[2 * k as usize])
                .chain(net.fixed.iter().map(|&(x, _)| x));
            let ys = net
                .movable
                .iter()
                .map(|&k| pos[2 * k as usize + 1])
                .chain(net.fixed.iter().map(|&(_, y)| y));
            (Axis::compute(xs, gamma), Axis::compute(ys, gamma))
        });
        let hpwl_um: f64 = terms
            .iter()
            .map(|(ax, ay)| (ax.max - ax.min) + (ay.max - ay.min))
            .sum();

        // kernel 2: per-cell wirelength + density gradients (field
        // interpolation inlined)
        let cell_grads: Vec<(f64, f64, f64, f64)> =
            parallel_map(&inst_nets, &par, |k, incident| {
                let (x, y) = (pos[2 * k], pos[2 * k + 1]);
                let mut gwx = 0.0;
                let mut gwy = 0.0;
                for &t in incident {
                    let (ax, ay) = &terms[t as usize];
                    gwx += ax.grad(x, gamma);
                    gwy += ay.grad(y, gamma);
                }
                let q = charge[k];
                let gdx = -q * grid.sample(&ex, x, y);
                let gdy = -q * grid.sample(&ey, x, y);
                (gwx, gwy, gdx, gdy)
            });

        // serial reductions in fixed order: λ calibration + combine
        if iter == 0 {
            let (mut sw, mut sd) = (0.0f64, 0.0f64);
            for &(gwx, gwy, gdx, gdy) in &cell_grads {
                sw += gwx.abs() + gwy.abs();
                sd += gdx.abs() + gdy.abs();
            }
            lambda = if sd > 0.0 { sw / sd } else { 1.0 };
        }
        for (k, &(gwx, gwy, gdx, gdy)) in cell_grads.iter().enumerate() {
            let precond = (npins[k] + lambda * charge[k]).max(1.0);
            grad[2 * k] = (gwx + lambda * gdx) / precond;
            grad[2 * k + 1] = (gwy + lambda * gdy) / precond;
        }

        // inverse-Lipschitz step, trust-clamped to one bin per move
        let gmax = grad.iter().fold(0.0f64, |m, g| m.max(g.abs()));
        let trust = grid.bin_w_um().max(grid.bin_h_um());
        let alpha = match nes.step_len(&grad) {
            Some(a) if gmax > 0.0 => a.min(trust / gmax),
            Some(a) => a,
            None if gmax > 0.0 => 0.1 * bin / gmax,
            None => 0.0,
        };

        if macro3d_obs::enabled(macro3d_obs::ObsLevel::Summary) {
            let reg = macro3d_obs::registry();
            reg.series("place/overflow").push(overflow);
            reg.series("place/hpwl_um").push(hpwl_um);
            reg.series("place/step_size").push(alpha);
        }

        if std::env::var_os("MACRO3D_ANALYTICAL_DEBUG").is_some() && iter % 16 == 0 {
            eprintln!(
                "  [nes {iter:4}] ovf={overflow:.3} hpwl={hpwl_um:9.1} gamma={gamma:.2} lambda={lambda:.3e} alpha={alpha:.3e} gmax={gmax:.3e}"
            );
        }
        if overflow < acfg.target_overflow || alpha == 0.0 {
            break;
        }
        // plateau guard: once overflow stops improving the density
        // weight has won — further growth only churns the wirelength
        if overflow < best_overflow - 1e-3 {
            best_overflow = overflow;
            stale = 0;
        } else {
            stale += 1;
            if stale >= 64 {
                break;
            }
        }
        nes.step(&grad, alpha, &clamp, &par);
        lambda *= acfg.lambda_growth;
    }

    // round the major solution back to Dbu lower-left corners
    let sol = nes.solution();
    for (k, &i) in movable.iter().enumerate() {
        let (x, y) = clamp(k, sol[2 * k], sol[2 * k + 1]);
        placement.pos[i.index()] =
            Point::new(Dbu::from_um(x - w[k] / 2.0), Dbu::from_um(y - h[k] / 2.0));
    }
    placement
}

/// splitmix64 (public-domain) — the deterministic jitter source.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::PlacerBackend;
    use crate::hpwl::total_hpwl;
    use macro3d_geom::Rect;
    use macro3d_netlist::PinRef;
    use macro3d_tech::{libgen::n28_library, CellClass, PinDir};
    use std::sync::Arc;

    fn chain_design(n: usize) -> (Design, Vec<InstId>) {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("chain", lib);
        let pi = d.add_port("in", PinDir::Input, Some(macro3d_netlist::Side::West));
        let po = d.add_port("out", PinDir::Output, Some(macro3d_netlist::Side::East));
        let mut insts = Vec::new();
        let mut prev = d.add_net("n_in");
        d.connect(prev, PinRef::Port(pi));
        for i in 0..n {
            let c = d.add_cell(format!("c{i}"), inv);
            d.connect(prev, PinRef::inst(c, 0));
            prev = d.add_net(format!("w{i}"));
            d.connect(prev, PinRef::inst(c, 1));
            insts.push(c);
        }
        d.connect(prev, PinRef::Port(po));
        (d, insts)
    }

    fn fp(w: f64, h: f64) -> Floorplan {
        Floorplan::new(
            Rect::from_um(0.0, 0.0, w, h),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        )
    }

    fn cfg() -> GlobalPlaceConfig {
        GlobalPlaceConfig {
            backend: PlacerBackend::Analytical,
            ..GlobalPlaceConfig::default()
        }
    }

    #[test]
    fn chain_is_ordered_toward_ports() {
        let (d, insts) = chain_design(64);
        let f = fp(100.0, 24.0);
        let ports = PortPlan::assign(&d, f.die());
        let p = analytical_place(&d, &f, &ports, &cfg());
        let avg = |slice: &[InstId]| -> f64 {
            slice
                .iter()
                .map(|i| p.pos[i.index()].x.0 as f64)
                .sum::<f64>()
                / slice.len() as f64
        };
        let head = avg(&insts[..16]);
        let tail = avg(&insts[48..]);
        assert!(
            head < tail,
            "chain head at {head} should precede tail at {tail}"
        );
    }

    #[test]
    fn all_cells_inside_die() {
        let (d, _) = chain_design(200);
        let f = fp(60.0, 60.0);
        let ports = PortPlan::assign(&d, f.die());
        let p = analytical_place(&d, &f, &ports, &cfg());
        for i in d.inst_ids() {
            assert!(
                f.die()
                    .inflate(Dbu::from_um(0.1))
                    .contains_rect(p.rect(&d, i)),
                "cell {} at {:?} escapes die",
                i,
                p.pos[i.index()]
            );
        }
    }

    #[test]
    fn beats_random_and_rivals_bisection_hpwl() {
        use rand::{Rng, SeedableRng};
        let (d, _) = chain_design(300);
        let f = fp(100.0, 40.0);
        let ports = PortPlan::assign(&d, f.die());
        let placed = analytical_place(&d, &f, &ports, &cfg());
        let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
        let mut random = Placement::new(&d);
        for i in d.inst_ids() {
            random.pos[i.index()] =
                Point::from_um(rng.gen_range(0.0..100.0), rng.gen_range(0.0..40.0));
        }
        let analytical = total_hpwl(&d, &placed, &ports).0;
        assert!(
            analytical * 2 < total_hpwl(&d, &random, &ports).0,
            "analytical {} vs random {}",
            analytical,
            total_hpwl(&d, &random, &ports)
        );
    }

    #[test]
    fn spreads_cells_below_target_overflow() {
        let (d, insts) = chain_design(400);
        let f = fp(80.0, 48.0);
        let ports = PortPlan::assign(&d, f.die());
        let p = analytical_place(&d, &f, &ports, &cfg());
        // more than half the bins of an 8×8 coverage grid are used
        let mut seen = std::collections::HashSet::new();
        for &i in &insts {
            let c = p.center(&d, i);
            seen.insert(((c.x.0 * 8 / 80_000).min(7), (c.y.0 * 8 / 48_000).min(7)));
        }
        assert!(seen.len() > 16, "cells collapsed into {} bins", seen.len());
    }

    #[test]
    fn tiny_designs_fall_back_to_bisection() {
        let (d, _) = chain_design(4);
        let f = fp(30.0, 12.0);
        let ports = PortPlan::assign(&d, f.die());
        let p = analytical_place(&d, &f, &ports, &cfg());
        for i in d.inst_ids() {
            assert!(f
                .die()
                .inflate(Dbu::from_um(1.0))
                .contains(p.pos[i.index()]));
        }
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        use macro3d_par::{BudgetScope, FlowBudget};
        let (d, _) = chain_design(100);
        let f = fp(60.0, 24.0);
        let ports = PortPlan::assign(&d, f.die());
        let budget = FlowBudget::unlimited().with_cap("place/nesterov_iters", 3);
        let scope = BudgetScope::begin(&budget, None);
        let p = analytical_place(&d, &f, &ports, &cfg());
        let report = scope.finish();
        assert!(report.is_degraded(), "cap must surface as degradation");
        assert_eq!(report.stages[0].site, "place/nesterov_iters");
        for i in d.inst_ids() {
            assert!(f
                .die()
                .inflate(Dbu::from_um(1.0))
                .contains(p.pos[i.index()]));
        }
    }
}
