//! Simulated-annealing refinement of macro placements.
//!
//! The deterministic packers ([`crate::macro_place`]) produce valid
//! floorplans; this pass models the paper's "highly optimized
//! floorplans … considering multiple floorplan alternatives" by
//! annealing over position swaps and nudges under a caller-supplied
//! cost (typically macro-net HPWL).

use crate::floorplan::MacroPlacement;
use crate::hpwl::HpwlCache;
use crate::placement::Placement;
use crate::ports::PortPlan;
use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::{Design, InstId, Master, NetId, PinRef};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Annealing parameters.
#[derive(Clone, Copy, Debug)]
pub struct AnnealConfig {
    /// Number of proposed moves.
    pub iterations: usize,
    /// Initial temperature as a fraction of the initial cost.
    pub t0_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            iterations: 2_000,
            t0_frac: 0.05,
            seed: 0x5a,
        }
    }
}

/// HPWL of all nets touching at least one of the placed macros, with
/// non-macro pins collapsed to the die centre (logic is not placed
/// yet at floorplanning time). The standard macro-floorplanning cost.
pub fn macro_net_hpwl(design: &Design, placements: &[MacroPlacement], die: Rect) -> f64 {
    // ordered maps so cost bookkeeping never touches hash iteration
    // order (a nondeterminism hazard next to the seeded annealer)
    let pos: BTreeMap<InstId, Point> = placements.iter().map(|mp| (mp.inst, mp.rect.lo)).collect();
    let center = die.center();

    let mut seen = BTreeSet::new();
    let mut total = 0.0f64;
    for mp in placements {
        for conn in &design.inst(mp.inst).conns {
            let Some(net) = conn else { continue };
            if !seen.insert(*net) {
                continue;
            }
            total += net_span(design, *net, &pos, center);
        }
    }
    total
}

fn net_span(design: &Design, net: NetId, pos: &BTreeMap<InstId, Point>, center: Point) -> f64 {
    let mut lo: Option<Point> = None;
    let mut hi: Option<Point> = None;
    let add = |p: Point, lo: &mut Option<Point>, hi: &mut Option<Point>| {
        *lo = Some(lo.map_or(p, |q| q.min(p)));
        *hi = Some(hi.map_or(p, |q| q.max(p)));
    };
    for &pin in &design.net(net).pins {
        let p = match pin {
            PinRef::Inst { inst, pin } => match (design.inst(inst).master, pos.get(&inst)) {
                (Master::Macro(m), Some(&base)) => {
                    base + (design.macro_master(m).pins[pin as usize].offset - Point::ORIGIN)
                }
                _ => center,
            },
            PinRef::Port(_) => center,
        };
        add(p, &mut lo, &mut hi);
    }
    match (lo, hi) {
        (Some(l), Some(h)) => l.manhattan(h).to_um(),
        _ => 0.0,
    }
}

/// Anneals the placements in place, proposing same-die position swaps
/// of equally sized macros and small nudges, and returns the final
/// cost. Every accepted state is legal (within `die`, same-die
/// overlap-free with halo).
///
/// Cost is the macro-net HPWL of [`macro_net_hpwl`], evaluated
/// through the shared [`HpwlCache`]: each proposal re-evaluates only
/// the nets incident to the moved macros (delta update, undone on
/// rejection) instead of recomputing every macro-adjacent net.
pub fn refine_macros_sa(
    design: &Design,
    placements: &mut [MacroPlacement],
    die: Rect,
    halo: Dbu,
    cfg: &AnnealConfig,
) -> f64 {
    if placements.len() < 2 {
        return macro_net_hpwl(design, placements, die);
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Synthetic flat views of the floorplanning state for the shared
    // evaluator: annealed macros sit at their placed corners, every
    // other instance collapses to the die centre (logic is not placed
    // yet — the same convention as `macro_net_hpwl`), ports included.
    let center = die.center();
    let mut flat = Placement::new(design);
    for i in design.inst_ids() {
        let r = flat.rect(design, i);
        flat.pos[i.index()] = Point::new(center.x - r.width() / 2, center.y - r.height() / 2);
    }
    for mp in placements.iter() {
        flat.pos[mp.inst.index()] = mp.rect.lo;
    }
    let ports = PortPlan {
        pos: vec![center; design.num_ports()],
    };

    // macro-adjacent nets: tracked once overall, listed per macro so a
    // move touches exactly its own nets
    let mut tracked: BTreeSet<NetId> = BTreeSet::new();
    let nets_of: Vec<Vec<NetId>> = placements
        .iter()
        .map(|mp| {
            let mut mine: Vec<NetId> = design
                .inst(mp.inst)
                .conns
                .iter()
                .flatten()
                .copied()
                .collect();
            mine.sort_unstable();
            mine.dedup();
            tracked.extend(mine.iter().copied());
            mine
        })
        .collect();
    let mut cache = HpwlCache::over_nets(design, &flat, &ports, tracked);

    let mut cost = cache.total().to_um();
    let t0 = (cost * cfg.t0_frac).max(1.0);

    // batched locally; one registry add per call keeps the loop hot
    let mut proposals = 0u64;
    let mut accepts = 0u64;
    // best-so-far snapshot, restored if the budget stops the anneal
    // mid-schedule (the current state may sit on an uphill excursion)
    let mut best_cost = cost;
    let mut best: Vec<MacroPlacement> = placements.to_vec();
    let mut stopped = false;
    for it in 0..cfg.iterations {
        if let macro3d_par::Checkpoint::Stop(reason) =
            macro3d_par::checkpoint("place/anneal_proposals")
        {
            macro3d_par::note_degradation(
                "place/anneal_proposals",
                reason,
                format!("stopped after {it} of {} anneal proposals", cfg.iterations),
            );
            stopped = true;
            break;
        }
        let t = t0 * (1.0 - it as f64 / cfg.iterations as f64).max(1e-3);
        let a = rng.gen_range(0..placements.len());
        let b = rng.gen_range(0..placements.len());

        enum Move {
            Swap(usize, usize),
            Nudge(usize, Point),
        }
        let proposal = if a != b
            && placements[a].die == placements[b].die
            && placements[a].rect.size() == placements[b].rect.size()
            && rng.gen_bool(0.6)
        {
            Move::Swap(a, b)
        } else {
            let step = Dbu::from_um(rng.gen_range(5.0..60.0));
            let dir = rng.gen_range(0..4);
            let (dx, dy) = match dir {
                0 => (step, Dbu(0)),
                1 => (-step, Dbu(0)),
                2 => (Dbu(0), step),
                _ => (Dbu(0), -step),
            };
            Move::Nudge(
                a,
                Point::new(placements[a].rect.lo.x + dx, placements[a].rect.lo.y + dy),
            )
        };

        // apply tentatively
        let saved_a = placements[a];
        let saved_b = placements[b];
        let touched: Vec<NetId> = match proposal {
            Move::Swap(i, j) => {
                let (pi, pj) = (placements[i].rect.lo, placements[j].rect.lo);
                placements[i].rect = placements[i].rect.moved_to(pj);
                placements[j].rect = placements[j].rect.moved_to(pi);
                nets_of[i].iter().chain(&nets_of[j]).copied().collect()
            }
            Move::Nudge(i, to) => {
                placements[i].rect = placements[i].rect.moved_to(to);
                nets_of[i].clone()
            }
        };
        flat.pos[placements[a].inst.index()] = placements[a].rect.lo;
        flat.pos[placements[b].inst.index()] = placements[b].rect.lo;

        let legal = legal_with_halo(placements, die, halo);
        let (new_cost, undo) = if legal {
            let undo = cache.update_nets(design, &flat, &ports, &touched);
            (cache.total().to_um(), Some(undo))
        } else {
            (f64::INFINITY, None)
        };
        let accept = legal
            && (new_cost <= cost || rng.gen_bool(((cost - new_cost) / t).exp().clamp(0.0, 1.0)));
        proposals += 1;
        if accept {
            accepts += 1;
            cost = new_cost;
            if cost < best_cost {
                best_cost = cost;
                best.copy_from_slice(placements);
            }
        } else {
            placements[a] = saved_a;
            placements[b] = saved_b;
            flat.pos[saved_a.inst.index()] = saved_a.rect.lo;
            flat.pos[saved_b.inst.index()] = saved_b.rect.lo;
            if let Some(u) = undo {
                cache.undo(u);
            }
        }
    }
    ANNEAL_PROPOSALS.add(proposals);
    ANNEAL_ACCEPTS.add(accepts);
    if stopped && best_cost < cost {
        placements.copy_from_slice(&best);
        return best_cost;
    }
    cost
}

/// Proposed anneal moves (the accept ratio is derived at export).
static ANNEAL_PROPOSALS: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("place/anneal_proposals");
/// Accepted anneal moves.
static ANNEAL_ACCEPTS: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("place/anneal_accepts");

fn legal_with_halo(placements: &[MacroPlacement], die: Rect, halo: Dbu) -> bool {
    for (i, a) in placements.iter().enumerate() {
        if !die.contains_rect(a.rect) {
            return false;
        }
        let ar = a.rect.inflate(halo);
        for b in &placements[i + 1..] {
            if a.die == b.die && ar.overlaps(b.rect) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macro_place::pack_shelves;
    use macro3d_sram::MemoryCompiler;
    use macro3d_tech::libgen::n28_library;
    use macro3d_tech::stack::DieRole;
    use macro3d_tech::PinDir;
    use std::sync::Arc;

    /// Eight identical banks whose address bus ties them to the die
    /// centre — annealing should not increase the bus HPWL.
    fn banked_design() -> (Design, Vec<InstId>) {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib);
        let def = MemoryCompiler::n28().sram("bank", 2048, 128);
        let clk_pin = def.clock_pin().expect("clk");
        let mm = d.add_macro_master(def);
        let clk_port = d.add_port("clk", PinDir::Input, None);
        let clk = d.add_net("clk");
        d.connect(clk, PinRef::Port(clk_port));
        let mut insts = Vec::new();
        for b in 0..8 {
            let i = d.add_macro_in(format!("bank{b}"), mm, 0);
            d.connect(clk, PinRef::inst(i, clk_pin as u16));
            insts.push(i);
        }
        (d, insts)
    }

    #[test]
    fn anneal_never_worsens_and_stays_legal() {
        let (d, insts) = banked_design();
        let die = Rect::from_um(0.0, 0.0, 900.0, 900.0);
        let halo = Dbu::from_um(2.0);
        let mut p = pack_shelves(&d, &insts, die, halo, DieRole::Macro).expect("fits");
        let before = macro_net_hpwl(&d, &p, die);
        let after = refine_macros_sa(
            &d,
            &mut p,
            die,
            halo,
            &AnnealConfig {
                iterations: 800,
                ..Default::default()
            },
        );
        assert!(after <= before * 1.001, "{after} vs {before}");
        assert!(crate::macro_place::is_legal(&p, die));
        // halo preserved between any pair
        for (i, a) in p.iter().enumerate() {
            for b in &p[i + 1..] {
                assert!(!a.rect.inflate(halo).overlaps(b.rect));
            }
        }
    }

    #[test]
    fn cost_is_deterministic() {
        let (d, insts) = banked_design();
        let die = Rect::from_um(0.0, 0.0, 900.0, 900.0);
        let p = pack_shelves(&d, &insts, die, Dbu::from_um(2.0), DieRole::Macro).expect("fits");
        assert_eq!(
            macro_net_hpwl(&d, &p, die).to_bits(),
            macro_net_hpwl(&d, &p, die).to_bits()
        );
    }
}
