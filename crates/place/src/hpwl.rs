//! Pin positions and half-perimeter wirelength.

use crate::placement::Placement;
use crate::ports::PortPlan;
use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::{Design, Master, NetId, PinRef};

/// Physical location of a pin.
///
/// Standard-cell pins are approximated at the cell centre (adequate at
/// this abstraction level — cells are micrometres across while nets
/// span tens to hundreds); macro pins use their exact LEF offsets;
/// ports use the port plan.
///
/// # Panics
///
/// Panics if ids are out of range.
pub fn pin_position(
    design: &Design,
    placement: &Placement,
    ports: &PortPlan,
    pin: PinRef,
) -> Point {
    match pin {
        PinRef::Port(p) => ports.position(p),
        PinRef::Inst { inst, pin } => match design.inst(inst).master {
            Master::Cell(_) => placement.center(design, inst),
            Master::Macro(m) => {
                let def = design.macro_master(m);
                let base = placement.pos[inst.index()];
                base + (def.pins[pin as usize].offset - Point::ORIGIN)
            }
        },
    }
}

/// Bounding box of a net's pins, or `None` for degenerate nets
/// (fewer than one pin).
pub fn net_bbox(
    design: &Design,
    placement: &Placement,
    ports: &PortPlan,
    net: NetId,
) -> Option<Rect> {
    let pins = &design.net(net).pins;
    let first = pins.first()?;
    let p0 = pin_position(design, placement, ports, *first);
    let mut lo = p0;
    let mut hi = p0;
    for &p in &pins[1..] {
        let pt = pin_position(design, placement, ports, p);
        lo = lo.min(pt);
        hi = hi.max(pt);
    }
    Some(Rect { lo, hi })
}

/// Half-perimeter wirelength of one net.
pub fn net_hpwl(design: &Design, placement: &Placement, ports: &PortPlan, net: NetId) -> Dbu {
    match net_bbox(design, placement, ports, net) {
        Some(b) => b.size().half_perimeter(),
        None => Dbu(0),
    }
}

/// Total HPWL over all nets with at least two pins.
pub fn total_hpwl(design: &Design, placement: &Placement, ports: &PortPlan) -> Dbu {
    design
        .net_ids()
        .filter(|&n| design.net(n).pins.len() >= 2)
        .map(|n| net_hpwl(design, placement, ports, n))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::{libgen::n28_library, CellClass, PinDir};
    use std::sync::Arc;

    #[test]
    fn hpwl_of_two_cells() {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib);
        let a = d.add_cell("a", inv);
        let b = d.add_cell("b", inv);
        let n = d.add_net("n");
        d.connect(n, PinRef::inst(a, 1));
        d.connect(n, PinRef::inst(b, 0));
        let mut p = Placement::new(&d);
        p.pos[a.index()] = Point::from_um(0.0, 0.0);
        p.pos[b.index()] = Point::from_um(100.0, 50.0);
        let ports = PortPlan { pos: vec![] };
        let w = net_hpwl(&d, &p, &ports, n);
        // centers are offset by the same cell size, so distance is exact
        assert_eq!(w, Dbu::from_um(150.0));
        assert_eq!(total_hpwl(&d, &p, &ports), w);
    }

    #[test]
    fn macro_pins_use_offsets() {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib);
        let def = macro3d_sram::MemoryCompiler::n28().sram("s", 256, 32);
        let pin0_off = def.pins[0].offset;
        let mm = d.add_macro_master(def);
        let m = d.add_macro_in("m", mm, 0);
        let mut p = Placement::new(&d);
        p.pos[m.index()] = Point::from_um(10.0, 20.0);
        let ports = PortPlan { pos: vec![] };
        let pt = pin_position(&d, &p, &ports, PinRef::inst(m, 0));
        assert_eq!(pt.x, Point::from_um(10.0, 20.0).x + pin0_off.x);
        assert_eq!(pt.y, Point::from_um(10.0, 20.0).y + pin0_off.y);
    }

    #[test]
    fn port_pins_use_plan() {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib);
        let p0 = d.add_port("p", PinDir::Input, None);
        let n = d.add_net("n");
        d.connect(n, PinRef::Port(p0));
        let p = Placement::new(&d);
        let ports = PortPlan {
            pos: vec![Point::from_um(5.0, 7.0)],
        };
        assert_eq!(
            pin_position(&d, &p, &ports, PinRef::Port(p0)),
            Point::from_um(5.0, 7.0)
        );
        // single-pin nets contribute zero HPWL
        assert_eq!(total_hpwl(&d, &p, &ports), Dbu(0));
    }
}
