//! Pin positions and half-perimeter wirelength.

use crate::placement::Placement;
use crate::ports::PortPlan;
use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::{Design, Master, NetId, PinRef};

/// Physical location of a pin.
///
/// Standard-cell pins are approximated at the cell centre (adequate at
/// this abstraction level — cells are micrometres across while nets
/// span tens to hundreds); macro pins use their exact LEF offsets;
/// ports use the port plan.
///
/// # Panics
///
/// Panics if ids are out of range.
pub fn pin_position(
    design: &Design,
    placement: &Placement,
    ports: &PortPlan,
    pin: PinRef,
) -> Point {
    match pin {
        PinRef::Port(p) => ports.position(p),
        PinRef::Inst { inst, pin } => match design.inst(inst).master {
            Master::Cell(_) => placement.center(design, inst),
            Master::Macro(m) => {
                let def = design.macro_master(m);
                let base = placement.pos[inst.index()];
                base + (def.pins[pin as usize].offset - Point::ORIGIN)
            }
        },
    }
}

/// Bounding box of a net's pins, or `None` for degenerate nets
/// (fewer than one pin).
pub fn net_bbox(
    design: &Design,
    placement: &Placement,
    ports: &PortPlan,
    net: NetId,
) -> Option<Rect> {
    let pins = &design.net(net).pins;
    let first = pins.first()?;
    let p0 = pin_position(design, placement, ports, *first);
    let mut lo = p0;
    let mut hi = p0;
    for &p in &pins[1..] {
        let pt = pin_position(design, placement, ports, p);
        lo = lo.min(pt);
        hi = hi.max(pt);
    }
    Some(Rect { lo, hi })
}

/// Half-perimeter wirelength of one net.
pub fn net_hpwl(design: &Design, placement: &Placement, ports: &PortPlan, net: NetId) -> Dbu {
    match net_bbox(design, placement, ports, net) {
        Some(b) => b.size().half_perimeter(),
        None => Dbu(0),
    }
}

/// Total HPWL over all nets with at least two pins.
pub fn total_hpwl(design: &Design, placement: &Placement, ports: &PortPlan) -> Dbu {
    design
        .net_ids()
        .filter(|&n| design.net(n).pins.len() >= 2)
        .map(|n| net_hpwl(design, placement, ports, n))
        .sum()
}

/// Incremental HPWL evaluator over a tracked net subset.
///
/// Caches each tracked net's half-perimeter and the integer running
/// total, so a local move costs one [`HpwlCache::update_nets`] over
/// the nets it touches instead of a full recompute. Because spans are
/// exact [`Dbu`] integers, [`HpwlCache::total`] always equals the sum
/// of fresh per-net recomputes bit for bit — optimizers (annealing,
/// detailed placement) can mix incremental and full evaluation freely.
///
/// Rejected moves are rolled back with the [`HpwlUndo`] record
/// returned by `update_nets` (restore the placement, then
/// [`HpwlCache::undo`]).
#[derive(Clone, Debug)]
pub struct HpwlCache {
    /// Cached HPWL per net; `None` for untracked nets.
    cached: Vec<Option<Dbu>>,
    total: Dbu,
}

/// Inverse of one [`HpwlCache::update_nets`] call.
#[derive(Clone, Debug)]
pub struct HpwlUndo {
    /// `(net, previous span)` in update order.
    entries: Vec<(NetId, Dbu)>,
}

impl HpwlCache {
    /// Builds a cache tracking every net with at least two pins.
    pub fn new(design: &Design, placement: &Placement, ports: &PortPlan) -> Self {
        Self::over_nets(
            design,
            placement,
            ports,
            design.net_ids().filter(|&n| design.net(n).pins.len() >= 2),
        )
    }

    /// Builds a cache tracking only the given nets (duplicates are
    /// tracked once). Nets with fewer than two pins are skipped.
    pub fn over_nets(
        design: &Design,
        placement: &Placement,
        ports: &PortPlan,
        nets: impl IntoIterator<Item = NetId>,
    ) -> Self {
        let mut cache = HpwlCache {
            cached: vec![None; design.num_nets()],
            total: Dbu(0),
        };
        let mut inits = 0u64;
        for n in nets {
            if design.net(n).pins.len() < 2 || cache.cached[n.index()].is_some() {
                continue;
            }
            let w = net_hpwl(design, placement, ports, n);
            cache.cached[n.index()] = Some(w);
            cache.total += w;
            inits += 1;
        }
        HPWL_CACHE_INITS.add(inits);
        cache
    }

    /// The running total over all tracked nets.
    #[inline]
    pub fn total(&self) -> Dbu {
        self.total
    }

    /// Cached span of one net (`None` if untracked).
    #[inline]
    pub fn net(&self, n: NetId) -> Option<Dbu> {
        self.cached[n.index()]
    }

    /// Re-evaluates the given nets against the current placement and
    /// returns the undo record for the whole batch. Untracked nets are
    /// ignored; duplicates in `nets` are handled (undo replays in
    /// reverse).
    pub fn update_nets(
        &mut self,
        design: &Design,
        placement: &Placement,
        ports: &PortPlan,
        nets: &[NetId],
    ) -> HpwlUndo {
        let mut entries = Vec::with_capacity(nets.len());
        for &n in nets {
            let Some(old) = self.cached[n.index()] else {
                continue;
            };
            let new = net_hpwl(design, placement, ports, n);
            if new != old {
                self.total += new - old;
                self.cached[n.index()] = Some(new);
            }
            entries.push((n, old));
        }
        HPWL_CACHE_HITS.add(entries.len() as u64);
        HpwlUndo { entries }
    }

    /// Rolls back one `update_nets` batch (apply to the *matching*
    /// state only, most recent first).
    // INVARIANT: an `HpwlUndo` only holds nets the cache tracked when
    // it was produced, and tracked nets are never evicted.
    #[allow(clippy::expect_used)]
    pub fn undo(&mut self, undo: HpwlUndo) {
        for (n, old) in undo.entries.into_iter().rev() {
            let cur = self.cached[n.index()].expect("undo of tracked net");
            self.total += old - cur;
            self.cached[n.index()] = Some(old);
        }
    }
}

/// Incremental re-evaluations served by the cache (nets whose span
/// was delta-updated instead of the whole design rescored).
static HPWL_CACHE_HITS: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("place/hpwl_cache_hits");
/// Nets scored from scratch when a cache is (re)built.
static HPWL_CACHE_INITS: macro3d_obs::SiteCounter =
    macro3d_obs::SiteCounter::new("place/hpwl_cache_inits");

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::{libgen::n28_library, CellClass, PinDir};
    use std::sync::Arc;

    #[test]
    fn hpwl_of_two_cells() {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib);
        let a = d.add_cell("a", inv);
        let b = d.add_cell("b", inv);
        let n = d.add_net("n");
        d.connect(n, PinRef::inst(a, 1));
        d.connect(n, PinRef::inst(b, 0));
        let mut p = Placement::new(&d);
        p.pos[a.index()] = Point::from_um(0.0, 0.0);
        p.pos[b.index()] = Point::from_um(100.0, 50.0);
        let ports = PortPlan { pos: vec![] };
        let w = net_hpwl(&d, &p, &ports, n);
        // centers are offset by the same cell size, so distance is exact
        assert_eq!(w, Dbu::from_um(150.0));
        assert_eq!(total_hpwl(&d, &p, &ports), w);
    }

    #[test]
    fn macro_pins_use_offsets() {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib);
        let def = macro3d_sram::MemoryCompiler::n28().sram("s", 256, 32);
        let pin0_off = def.pins[0].offset;
        let mm = d.add_macro_master(def);
        let m = d.add_macro_in("m", mm, 0);
        let mut p = Placement::new(&d);
        p.pos[m.index()] = Point::from_um(10.0, 20.0);
        let ports = PortPlan { pos: vec![] };
        let pt = pin_position(&d, &p, &ports, PinRef::inst(m, 0));
        assert_eq!(pt.x, Point::from_um(10.0, 20.0).x + pin0_off.x);
        assert_eq!(pt.y, Point::from_um(10.0, 20.0).y + pin0_off.y);
    }

    #[test]
    fn cache_tracks_total_incrementally() {
        use macro3d_netlist::Side;
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib);
        let port = d.add_port("p", PinDir::Input, Some(Side::West));
        let mut cells = Vec::new();
        let mut nets = Vec::new();
        for i in 0..6 {
            let c = d.add_cell(format!("c{i}"), inv);
            let n = d.add_net(format!("n{i}"));
            d.connect(n, PinRef::inst(c, 0));
            if let Some(&prev) = cells.last() {
                d.connect(n, PinRef::inst(prev, 1));
            } else {
                d.connect(n, PinRef::Port(port));
            }
            cells.push(c);
            nets.push(n);
        }
        let mut p = Placement::new(&d);
        for (i, &c) in cells.iter().enumerate() {
            p.pos[c.index()] = Point::from_um(10.0 * i as f64, 3.0 * i as f64);
        }
        let ports = PortPlan {
            pos: vec![Point::from_um(0.0, 0.0)],
        };

        let mut cache = HpwlCache::new(&d, &p, &ports);
        assert_eq!(cache.total(), total_hpwl(&d, &p, &ports));

        // move a middle cell; only its two nets change
        p.pos[cells[3].index()] = Point::from_um(55.0, 1.0);
        let touched = [nets[3], nets[4]];
        let undo = cache.update_nets(&d, &p, &ports, &touched);
        assert_eq!(cache.total(), total_hpwl(&d, &p, &ports), "after update");

        // rejected move: restore the placement and undo the cache
        p.pos[cells[3].index()] = Point::from_um(30.0, 9.0);
        cache.undo(undo);
        assert_eq!(cache.total(), total_hpwl(&d, &p, &ports), "after undo");
    }

    #[test]
    fn cache_subset_and_duplicates() {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib);
        let a = d.add_cell("a", inv);
        let b = d.add_cell("b", inv);
        let n = d.add_net("n");
        d.connect(n, PinRef::inst(a, 1));
        d.connect(n, PinRef::inst(b, 0));
        let lone = d.add_net("lone");
        d.connect(lone, PinRef::inst(b, 1));
        let mut p = Placement::new(&d);
        p.pos[b.index()] = Point::from_um(20.0, 0.0);
        let ports = PortPlan { pos: vec![] };

        // duplicates tracked once; single-pin nets skipped
        let cache = HpwlCache::over_nets(&d, &p, &ports, [n, n, lone]);
        assert_eq!(cache.total(), net_hpwl(&d, &p, &ports, n));
        assert_eq!(cache.net(lone), None);
        assert_eq!(cache.net(n), Some(net_hpwl(&d, &p, &ports, n)));
    }

    #[test]
    fn port_pins_use_plan() {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib);
        let p0 = d.add_port("p", PinDir::Input, None);
        let n = d.add_net("n");
        d.connect(n, PinRef::Port(p0));
        let p = Placement::new(&d);
        let ports = PortPlan {
            pos: vec![Point::from_um(5.0, 7.0)],
        };
        assert_eq!(
            pin_position(&d, &p, &ports, PinRef::Port(p0)),
            Point::from_um(5.0, 7.0)
        );
        // single-pin nets contribute zero HPWL
        assert_eq!(total_hpwl(&d, &p, &ports), Dbu(0));
    }
}
