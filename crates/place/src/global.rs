//! Recursive min-cut bisection global placement.
//!
//! The placer recursively splits the core area into two sub-regions of
//! equal *usable* capacity (full/partial blockages discounted), FM-
//! partitions the region's cells to minimise cut with terminal
//! propagation (external pins — ports, macro pins, already-assigned
//! cells — anchor nets to the side nearer their projection), and
//! recurses until a handful of cells per region remain, which are then
//! spread over the region.
//!
//! After a cut, the two sub-problems never interact: each child sees
//! the rest of the design only through an immutable snapshot of
//! external cell estimates taken at fork time (sibling cells at the
//! sibling region's centre). Both halves therefore recurse through
//! [`parallel_join`] concurrently, and per the `macro3d-par`
//! determinism contract the result is bit-identical for any thread
//! count.

use crate::floorplan::Floorplan;
use crate::hpwl::pin_position;
use crate::partition::{bipartition, FmConfig, Hypergraph};
use crate::placement::Placement;
use crate::ports::PortPlan;
use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::{Design, InstId, Master, NetId, PinRef};
use macro3d_par::{parallel_join, Parallelism};
use std::collections::HashMap;

/// Which global-placement engine runs (both honour the same
/// determinism contract and the same [`GlobalPlaceConfig`] fields
/// they share).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlacerBackend {
    /// Recursive min-cut bisection with terminal propagation (this
    /// module) — the legacy engine and the QoR reference.
    #[default]
    Bisection,
    /// ePlace-style electrostatic analytical placement
    /// ([`crate::analytical`]): data-parallel gradient/density
    /// kernels, Nesterov descent, Abacus legalization handoff.
    Analytical,
}

/// Global-placement configuration.
#[derive(Clone, Copy, Debug)]
pub struct GlobalPlaceConfig {
    /// Stop recursing below this many cells per region.
    pub min_cells: usize,
    /// FM passes per bisection.
    pub fm_passes: usize,
    /// Nets larger than this are ignored during partitioning (clock
    /// and other global nets carry no placement information).
    pub max_net_degree: usize,
    /// Thread budget for the fork-join bisection tree. Output is
    /// bit-identical for any setting.
    pub parallelism: Parallelism,
    /// Which engine places the cells.
    pub backend: PlacerBackend,
    /// Knobs of the analytical backend (ignored by bisection).
    pub analytical: crate::analytical::AnalyticalConfig,
}

impl Default for GlobalPlaceConfig {
    fn default() -> Self {
        GlobalPlaceConfig {
            min_cells: 8,
            fm_passes: 2,
            max_net_degree: 64,
            parallelism: Parallelism::default(),
            backend: PlacerBackend::default(),
            analytical: crate::analytical::AnalyticalConfig::default(),
        }
    }
}

/// Runs global placement of all standard cells of `design` inside the
/// floorplan, dispatching on [`GlobalPlaceConfig::backend`]. Macros
/// take their positions from `fp.macros`; cells end up spread over
/// the usable area (overlapping; run [`crate::legalize::legalize`] or
/// [`crate::legalize::legalize_abacus`] next).
///
/// # Panics
///
/// Panics if a macro in `fp.macros` references an out-of-range
/// instance.
pub fn global_place(
    design: &Design,
    fp: &Floorplan,
    ports: &PortPlan,
    cfg: &GlobalPlaceConfig,
) -> Placement {
    match cfg.backend {
        PlacerBackend::Bisection => bisection_place(design, fp, ports, cfg),
        PlacerBackend::Analytical => crate::analytical::analytical_place(design, fp, ports, cfg),
    }
}

/// The recursive min-cut bisection engine (see the module docs).
pub(crate) fn bisection_place(
    design: &Design,
    fp: &Floorplan,
    ports: &PortPlan,
    cfg: &GlobalPlaceConfig,
) -> Placement {
    let mut placement = Placement::new(design);

    // Fix macros.
    for mp in &fp.macros {
        placement.pos[mp.inst.index()] = mp.rect.lo;
        placement.die_of[mp.inst.index()] = mp.die;
    }

    let movable: Vec<InstId> = design.inst_ids().filter(|&i| !design.is_macro(i)).collect();
    if movable.is_empty() {
        return placement;
    }
    for &i in &movable {
        placement.pos[i.index()] = fp.die().center();
    }

    // inst -> incident nets (small nets only)
    let mut inst_nets: Vec<Vec<NetId>> = vec![Vec::new(); design.num_insts()];
    for n in design.net_ids() {
        let pins = &design.net(n).pins;
        if pins.len() < 2 || pins.len() > cfg.max_net_degree {
            continue;
        }
        for p in pins {
            if let Some(i) = p.instance() {
                inst_nets[i.index()].push(n);
            }
        }
    }

    let ctx = PlaceCtx {
        design,
        fp,
        ports,
        cfg,
        inst_nets,
        base: placement.clone(),
    };
    // Root has no external cells, so its estimate snapshot is empty;
    // every deeper snapshot derives from the fork-time invariant that
    // a child's external cells are its sibling's cells plus its
    // parent's externals.
    let placed = place_region(
        &ctx,
        fp.die(),
        movable,
        HashMap::new(),
        cfg.parallelism.effective_threads(),
        0,
    );
    for (i, p) in placed {
        placement.pos[i.index()] = p;
    }
    placement
}

/// Read-only state shared by every node of the bisection tree.
struct PlaceCtx<'a> {
    design: &'a Design,
    fp: &'a Floorplan,
    ports: &'a PortPlan,
    cfg: &'a GlobalPlaceConfig,
    /// inst -> incident small nets.
    inst_nets: Vec<Vec<NetId>>,
    /// Macro positions and instance footprints for pin lookups. Cell
    /// positions here stay at the die centre — their region estimates
    /// travel through the per-node `ext` snapshots instead.
    base: Placement,
}

/// Places `cells` inside `region` and returns their final positions.
///
/// `ext` snapshots the position estimate of every *cell* outside the
/// region that shares a (small) net with one inside; macros and ports
/// are resolved through `ctx.base`. `budget` is the thread budget for
/// this subtree (see [`parallel_join`]); `depth` is the bisection
/// level, used only for trace span names.
fn place_region(
    ctx: &PlaceCtx,
    region: Rect,
    cells: Vec<InstId>,
    ext: HashMap<InstId, Point>,
    budget: usize,
    depth: usize,
) -> Vec<(InstId, Point)> {
    let _span = macro3d_obs::span_full!("bisect d{depth} n{}", cells.len());
    if cells.len() <= ctx.cfg.min_cells {
        return spread(ctx, region, &cells);
    }
    let horizontal_split = region.width() >= region.height();
    let Some((rect_a, rect_b, frac_a)) = split_region(ctx.fp, region, horizontal_split) else {
        return spread(ctx, region, &cells);
    };

    // degenerate capacity: push everything to the usable side
    let side = if frac_a < 0.02 {
        vec![1u8; cells.len()]
    } else if frac_a > 0.98 {
        vec![0u8; cells.len()]
    } else {
        partition_cells(ctx, &ext, &cells, horizontal_split, rect_a, frac_a)
    };

    let mut cells_a = Vec::new();
    let mut cells_b = Vec::new();
    let mut side_of: HashMap<InstId, u8> = HashMap::with_capacity(cells.len());
    for (k, &c) in cells.iter().enumerate() {
        side_of.insert(c, side[k]);
        if side[k] == 0 {
            cells_a.push(c);
        } else {
            cells_b.push(c);
        }
    }
    let ext_a = child_ext(ctx, &cells_a, &side_of, 0, rect_b.center(), &ext);
    let ext_b = child_ext(ctx, &cells_b, &side_of, 1, rect_a.center(), &ext);

    if cells_b.is_empty() {
        return place_region(ctx, rect_a, cells_a, ext_a, budget, depth + 1);
    }
    if cells_a.is_empty() {
        return place_region(ctx, rect_b, cells_b, ext_b, budget, depth + 1);
    }
    let (mut placed, placed_b) = parallel_join(
        budget,
        move |sub| place_region(ctx, rect_a, cells_a, ext_a, sub, depth + 1),
        move |sub| place_region(ctx, rect_b, cells_b, ext_b, sub, depth + 1),
    );
    placed.extend(placed_b);
    placed
}

/// Builds one child's external-estimate snapshot: cells that landed on
/// the sibling side are pinned at the sibling region's centre, and
/// everything farther out keeps its parent-snapshot estimate.
fn child_ext(
    ctx: &PlaceCtx,
    cells: &[InstId],
    side_of: &HashMap<InstId, u8>,
    my_side: u8,
    sibling_center: Point,
    parent_ext: &HashMap<InstId, Point>,
) -> HashMap<InstId, Point> {
    let mut ext = HashMap::new();
    for &c in cells {
        for &n in &ctx.inst_nets[c.index()] {
            for &p in &ctx.design.net(n).pins {
                let Some(i) = p.instance() else { continue };
                if ctx.design.is_macro(i) {
                    continue;
                }
                match side_of.get(&i) {
                    Some(&s) if s == my_side => {}
                    Some(_) => {
                        ext.insert(i, sibling_center);
                    }
                    None => {
                        if let Some(&pt) = parent_ext.get(&i) {
                            ext.insert(i, pt);
                        }
                    }
                }
            }
        }
    }
    ext
}

/// Splits a region so both halves have (approximately) equal usable
/// capacity. Returns `None` when the region is degenerate or one side
/// would have no capacity.
fn split_region(fp: &Floorplan, region: Rect, horizontal: bool) -> Option<(Rect, Rect, f64)> {
    let total = fp.usable_area_um2(region);
    if total <= 0.0 {
        return None;
    }
    let (mut lo, mut hi) = if horizontal {
        (region.lo.x.0, region.hi.x.0)
    } else {
        (region.lo.y.0, region.hi.y.0)
    };
    if hi - lo < 2 {
        return None;
    }
    // binary search for the halving coordinate
    for _ in 0..20 {
        let mid = (lo + hi) / 2;
        let a = left_rect(region, horizontal, Dbu(mid));
        if fp.usable_area_um2(a) < total / 2.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let cut = Dbu((lo + hi) / 2);
    let rect_a = left_rect(region, horizontal, cut);
    let rect_b = right_rect(region, horizontal, cut);
    let cap_a = fp.usable_area_um2(rect_a);
    let cap_b = fp.usable_area_um2(rect_b);
    if cap_a <= 0.0 || cap_b <= 0.0 || rect_a.is_empty() || rect_b.is_empty() {
        return None;
    }
    Some((rect_a, rect_b, cap_a / (cap_a + cap_b)))
}

fn left_rect(region: Rect, horizontal: bool, cut: Dbu) -> Rect {
    if horizontal {
        Rect::new(region.lo, Point::new(cut, region.hi.y))
    } else {
        Rect::new(region.lo, Point::new(region.hi.x, cut))
    }
}

fn right_rect(region: Rect, horizontal: bool, cut: Dbu) -> Rect {
    if horizontal {
        Rect::new(Point::new(cut, region.lo.y), region.hi)
    } else {
        Rect::new(Point::new(region.lo.x, cut), region.hi)
    }
}

fn partition_cells(
    ctx: &PlaceCtx,
    ext: &HashMap<InstId, Point>,
    cells: &[InstId],
    horizontal: bool,
    rect_a: Rect,
    frac_a: f64,
) -> Vec<u8> {
    let design = ctx.design;
    // local indexing
    let mut local_of = std::collections::HashMap::with_capacity(cells.len());
    let mut areas = Vec::with_capacity(cells.len());
    for (k, &c) in cells.iter().enumerate() {
        local_of.insert(c, k as u32);
        areas.push(design.inst_area_um2(c).max(1e-6));
    }
    let mut builder = Hypergraph::builder(areas);

    // collect incident nets once
    let mut seen = std::collections::HashSet::new();
    for &c in cells {
        for &n in &ctx.inst_nets[c.index()] {
            if !seen.insert(n) {
                continue;
            }
            let mut local = Vec::new();
            let mut ext_sum = 0.0f64;
            let mut ext_cnt = 0usize;
            for &p in &design.net(n).pins {
                match p.instance().and_then(|i| local_of.get(&i)) {
                    Some(&l) => local.push(l),
                    None => {
                        let pt = external_pin_pos(ctx, ext, p);
                        let coord = if horizontal { pt.x } else { pt.y };
                        ext_sum += coord.0 as f64;
                        ext_cnt += 1;
                    }
                }
            }
            if local.is_empty() {
                continue;
            }
            let anchor = if ext_cnt > 0 {
                let mean = ext_sum / ext_cnt as f64;
                let cut = if horizontal {
                    rect_a.hi.x.0
                } else {
                    rect_a.hi.y.0
                } as f64;
                Some(if mean < cut { 0 } else { 1 })
            } else {
                None
            };
            builder.add_net(&local, anchor);
        }
    }
    let hg = builder.build();
    bipartition(
        &hg,
        frac_a,
        None,
        &FmConfig {
            passes: ctx.cfg.fm_passes,
            balance_tol: 0.08,
        },
    )
}

/// Position of a pin outside the current region: cell pins use the
/// fork-time estimate snapshot; port and macro pins their fixed
/// locations.
fn external_pin_pos(ctx: &PlaceCtx, ext: &HashMap<InstId, Point>, pin: PinRef) -> Point {
    match pin {
        PinRef::Port(_) => pin_position(ctx.design, &ctx.base, ctx.ports, pin),
        PinRef::Inst { inst, .. } => match ctx.design.inst(inst).master {
            Master::Cell(_) => ext
                .get(&inst)
                .copied()
                .unwrap_or_else(|| ctx.fp.die().center()),
            Master::Macro(_) => pin_position(ctx.design, &ctx.base, ctx.ports, pin),
        },
    }
}

/// Distributes a handful of cells over a region's usable area on a
/// small grid.
fn spread(ctx: &PlaceCtx, region: Rect, cells: &[InstId]) -> Vec<(InstId, Point)> {
    let n = cells.len();
    if n == 0 {
        return Vec::new();
    }
    let cols = (n as f64).sqrt().ceil() as i64;
    let rows = ((n as i64) + cols - 1) / cols;
    let dx = region.width().0 / (cols + 1);
    let dy = region.height().0 / (rows + 1);
    let mut out = Vec::with_capacity(n);
    for (k, &c) in cells.iter().enumerate() {
        let col = k as i64 % cols;
        let row = k as i64 / cols;
        let mut p = Point::new(
            region.lo.x + Dbu(dx * (col + 1)),
            region.lo.y + Dbu(dy * (row + 1)),
        );
        // nudge out of fully blocked spots to the nearest open point
        let foot = ctx.base.rect(ctx.design, c).moved_to(p);
        if ctx.fp.is_fully_blocked(foot) {
            p = nearest_unblocked(ctx, c, region, p).unwrap_or(p);
        }
        out.push((c, p));
    }
    out
}

/// Finds the unblocked point nearest `target` on a coarse grid over
/// `region` (falling back to the whole die).
///
/// Walks the grid in expanding rings (a spiral) from the grid point
/// nearest the target and stops as soon as every remaining ring is
/// provably farther than the best hit, instead of rescanning all
/// `steps x steps` points.
fn nearest_unblocked(ctx: &PlaceCtx, inst: InstId, region: Rect, target: Point) -> Option<Point> {
    let foot0 = ctx.base.rect(ctx.design, inst);
    for area in [region, ctx.fp.die()] {
        let steps = 12i64;
        let sx = (area.width().0 / (steps + 1)).max(1);
        let sy = (area.height().0 / (steps + 1)).max(1);
        let grid =
            |ix: i64, iy: i64| Point::new(area.lo.x + Dbu(sx * ix), area.lo.y + Dbu(sy * iy));
        let ix0 = (((target.x - area.lo.x).0 + sx / 2) / sx).clamp(1, steps);
        let iy0 = (((target.y - area.lo.y).0 + sy / 2) / sy).clamp(1, steps);
        // triangle inequality through the spiral centre: a point on
        // ring r is at least r*min(sx,sy) - d0 from the target
        let d0 = grid(ix0, iy0).manhattan(target);
        let smin = Dbu(sx.min(sy));
        let mut best: Option<(Dbu, Point)> = None;
        for r in 0..steps {
            for iy in (iy0 - r).max(1)..=(iy0 + r).min(steps) {
                for ix in (ix0 - r).max(1)..=(ix0 + r).min(steps) {
                    if (ix - ix0).abs().max((iy - iy0).abs()) != r {
                        continue;
                    }
                    let p = grid(ix, iy);
                    let foot = foot0.moved_to(p);
                    if !ctx.fp.is_fully_blocked(foot) && ctx.fp.die().contains_rect(foot) {
                        let d = p.manhattan(target);
                        if best.is_none_or(|(bd, _)| d < bd) {
                            best = Some((d, p));
                        }
                    }
                }
            }
            if let Some((bd, _)) = best {
                if smin * (r + 1) - d0 > bd {
                    break;
                }
            }
        }
        if let Some((_, p)) = best {
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::BlockageKind;
    use crate::hpwl::total_hpwl;
    use macro3d_tech::{libgen::n28_library, CellClass, PinDir};
    use std::sync::Arc;

    /// A chain of cells between a west port and an east port: global
    /// placement should order the chain roughly left-to-right.
    fn chain_design(n: usize) -> (Design, Vec<InstId>) {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("chain", lib);
        let pi = d.add_port("in", PinDir::Input, Some(macro3d_netlist::Side::West));
        let po = d.add_port("out", PinDir::Output, Some(macro3d_netlist::Side::East));
        let mut insts = Vec::new();
        let mut prev = d.add_net("n_in");
        d.connect(prev, PinRef::Port(pi));
        for i in 0..n {
            let c = d.add_cell(format!("c{i}"), inv);
            d.connect(prev, PinRef::inst(c, 0));
            prev = d.add_net(format!("w{i}"));
            d.connect(prev, PinRef::inst(c, 1));
            insts.push(c);
        }
        d.connect(prev, PinRef::Port(po));
        (d, insts)
    }

    fn fp(w: f64, h: f64) -> Floorplan {
        Floorplan::new(
            Rect::from_um(0.0, 0.0, w, h),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        )
    }

    #[test]
    fn chain_is_ordered_toward_ports() {
        let (d, insts) = chain_design(64);
        let f = fp(100.0, 24.0);
        let ports = PortPlan::assign(&d, f.die());
        let p = global_place(&d, &f, &ports, &GlobalPlaceConfig::default());
        // first quarter should be left of last quarter on average
        let avg = |slice: &[InstId]| -> f64 {
            slice
                .iter()
                .map(|i| p.pos[i.index()].x.0 as f64)
                .sum::<f64>()
                / slice.len() as f64
        };
        let head = avg(&insts[..16]);
        let tail = avg(&insts[48..]);
        assert!(
            head < tail,
            "chain head at {head} should precede tail at {tail}"
        );
    }

    #[test]
    fn all_cells_inside_die() {
        let (d, _) = chain_design(200);
        let f = fp(60.0, 60.0);
        let ports = PortPlan::assign(&d, f.die());
        let p = global_place(&d, &f, &ports, &GlobalPlaceConfig::default());
        for i in d.inst_ids() {
            assert!(
                f.die()
                    .inflate(Dbu::from_um(1.0))
                    .contains(p.pos[i.index()]),
                "cell {} at {:?} escapes die",
                i,
                p.pos[i.index()]
            );
        }
    }

    #[test]
    fn blockage_keeps_cells_out() {
        let (d, _) = chain_design(128);
        let mut f = fp(80.0, 80.0);
        // block the left half fully
        f.add_blockage(Rect::from_um(0.0, 0.0, 40.0, 80.0), BlockageKind::Full);
        let ports = PortPlan::assign(&d, f.die());
        let p = global_place(&d, &f, &ports, &GlobalPlaceConfig::default());
        let inside_blockage = d
            .inst_ids()
            .filter(|i| p.pos[i.index()].x < Dbu::from_um(38.0))
            .count();
        // capacity-driven splitting pushes nearly everything right
        assert!(
            inside_blockage < 16,
            "{inside_blockage} cells placed in blocked half"
        );
    }

    #[test]
    fn placement_beats_random_hpwl() {
        use rand::{Rng, SeedableRng};
        let (d, _) = chain_design(100);
        let f = fp(100.0, 40.0);
        let ports = PortPlan::assign(&d, f.die());
        let placed = global_place(&d, &f, &ports, &GlobalPlaceConfig::default());
        let mut rng = rand::rngs::SmallRng::seed_from_u64(17);
        let mut random = Placement::new(&d);
        for i in d.inst_ids() {
            random.pos[i.index()] =
                Point::from_um(rng.gen_range(0.0..100.0), rng.gen_range(0.0..40.0));
        }
        // min-cut bisection keeps connected cells together
        assert!(
            total_hpwl(&d, &placed, &ports).0 * 2 < total_hpwl(&d, &random, &ports).0,
            "placed {} vs random {}",
            total_hpwl(&d, &placed, &ports),
            total_hpwl(&d, &random, &ports)
        );
    }
}
