//! Tetris-style row legalization.

use crate::floorplan::{BlockageKind, Floorplan};
use crate::placement::Placement;
use macro3d_geom::{Dbu, Interval, Point};
use macro3d_netlist::{Design, InstId};

/// Result of a legalization run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LegalizeReport {
    /// Sum of cell displacements.
    pub total_disp: Dbu,
    /// Largest single displacement.
    pub max_disp: Dbu,
    /// Mean displacement, µm.
    pub mean_disp_um: f64,
    /// Cells that could not be placed (die overfull).
    pub failed: usize,
}

/// A row's free space as a sorted list of disjoint intervals.
/// Interval splitting (rather than a monotone fill cursor) keeps
/// placement order-insensitive: a cell landing mid-row leaves both
/// sides usable.
#[derive(Clone, Debug)]
struct RowSpace {
    free: Vec<Interval>,
}

impl RowSpace {
    /// Widest remaining gap.
    fn widest(&self) -> Dbu {
        self.free.iter().map(|iv| iv.len()).max().unwrap_or(Dbu(0))
    }

    /// Best x for a cell of `width` near `target_x` (site-aligned),
    /// with its displacement.
    fn best_fit(&self, target_x: Dbu, width: Dbu, site: Dbu) -> Option<(Dbu, Dbu)> {
        let mut best: Option<(Dbu, Dbu)> = None;
        for iv in &self.free {
            if iv.len() < width {
                continue;
            }
            let lo = iv.lo.ceil_to(site);
            if lo + width > iv.hi {
                continue;
            }
            let hi = (iv.hi - width).floor_to(site).max(lo);
            // lo/hi are site-aligned, so flooring keeps x in [lo, hi]
            let x = target_x.clamp(lo, hi).floor_to(site).clamp(lo, hi);
            let dx = (x - target_x).abs();
            if best.is_none_or(|(_, d)| dx < d) {
                best = Some((x, dx));
            }
        }
        best
    }

    /// Carves `[x, x + width)` out of the free list.
    ///
    /// # Panics
    ///
    /// Panics if the span is not currently free — callers only pass
    /// spans returned by [`Self::nearest_fit`] on this row state.
    #[allow(clippy::expect_used)]
    fn occupy(&mut self, x: Dbu, width: Dbu) {
        let pos = self
            .free
            .iter()
            .position(|iv| x >= iv.lo && x + width <= iv.hi)
            .expect("span is free");
        let iv = self.free[pos];
        let mut repl = Vec::with_capacity(2);
        if x > iv.lo {
            repl.push(Interval::new(iv.lo, x));
        }
        if x + width < iv.hi {
            repl.push(Interval::new(x + width, iv.hi));
        }
        self.free.splice(pos..=pos, repl);
    }
}

/// Legalizes the given movable cells onto the floorplan's rows:
/// no overlaps, on-site x positions, outside full blockages.
///
/// Cells are processed in order of target x (the classic Tetris
/// scheme); each picks the row/segment position minimising
/// displacement. Macros and fixed cells must be reflected in the
/// floorplan's blockages before calling.
///
/// Partial blockages are **ignored** here (real legalizers see only
/// hard geometry) — quantize them into stripes first via
/// [`Floorplan::quantize_partial_blockages`] if they must constrain
/// legal positions.
pub fn legalize(
    design: &Design,
    fp: &Floorplan,
    placement: &mut Placement,
    movable: &[InstId],
) -> LegalizeReport {
    let num_rows = fp.num_rows();
    let site = fp.site_width();
    let mut rows: Vec<RowSpace> = (0..num_rows)
        .map(|r| RowSpace {
            free: build_row_segments(fp, r),
        })
        .collect();
    // widest remaining free span per row: lets the scan skip full rows
    // in O(1), which keeps overfull-die legalization (the S2D overlap
    // fixing) from degenerating
    let mut row_free: Vec<Dbu> = rows.iter().map(|r| r.widest()).collect();

    // Wide cells first (they fragment worst when placed late), then
    // left-to-right within each class.
    let wide = site * 24;
    let mut order: Vec<InstId> = movable.to_vec();
    order.sort_by_key(|i| {
        let w = placement.rect(design, *i).width();
        (
            w <= wide,
            placement.pos[i.index()].x,
            placement.pos[i.index()].y,
        )
    });

    let mut report = LegalizeReport::default();
    let row_h = fp.row_height();
    let die = fp.die();

    for inst in order {
        let target = placement.pos[inst.index()];
        let width = placement.rect(design, inst).width();
        let target_row =
            (((target.y - die.lo.y).0 / row_h.0).max(0) as usize).min(num_rows.saturating_sub(1));

        let mut best: Option<(Dbu, usize, Dbu)> = None; // (cost, row, x)
                                                        // scan rows outward from the target row; stop when row distance
                                                        // alone exceeds the best cost
        for delta in 0..num_rows {
            let candidates = [
                target_row.checked_sub(delta),
                if delta > 0 {
                    Some(target_row + delta)
                } else {
                    None
                },
            ];
            let dy = row_h * delta as i64;
            if let Some((cost, ..)) = best {
                if dy >= cost {
                    break;
                }
            }
            for row in candidates.into_iter().flatten() {
                if row >= num_rows || row_free[row] < width {
                    continue;
                }
                if let Some((x, dx)) = rows[row].best_fit(target.x, width, site) {
                    let cost = dx + dy;
                    if best.is_none_or(|(c, ..)| cost < c) {
                        best = Some((cost, row, x));
                    }
                }
            }
        }

        match best {
            Some((cost, row, x)) => {
                rows[row].occupy(x, width);
                row_free[row] = rows[row].widest();
                let y = die.lo.y + row_h * row as i64;
                placement.pos[inst.index()] = Point::new(x, y);
                placement.orient[inst.index()] = if row % 2 == 0 {
                    macro3d_geom::Orientation::N
                } else {
                    macro3d_geom::Orientation::FS
                };
                report.total_disp += cost;
                report.max_disp = report.max_disp.max(cost);
            }
            None => {
                report.failed += 1;
                if std::env::var_os("MACRO3D_LEGAL_DEBUG").is_some() {
                    let widest = row_free.iter().max().copied().unwrap_or(Dbu(0));
                    eprintln!(
                        "  [legalize-fail] {} w={:?} target={:?} widest_free={:?}",
                        design.inst(inst).name,
                        width,
                        target,
                        widest
                    );
                }
                // keep the cell inside the die even when no legal slot
                // exists (an overfull die is reported, not hidden)
                let r = placement.rect(design, inst);
                let mut p = placement.pos[inst.index()];
                p.x = p.x.clamp(die.lo.x, die.hi.x - r.width());
                p.y = p.y.clamp(die.lo.y, die.hi.y - r.height());
                placement.pos[inst.index()] = p;
            }
        }
    }
    if !movable.is_empty() {
        report.mean_disp_um = report.total_disp.to_um() / movable.len() as f64;
    }
    report
}

/// One Abacus cluster: a maximal run of abutted cells in a segment.
/// `q/e` is the unconstrained optimal position of the cluster head
/// (each cell pulls with weight `e_i` toward `x*_i − offset_i`).
#[derive(Clone, Debug)]
struct Cluster {
    e: f64,
    q: f64,
    w: Dbu,
    cells: Vec<InstId>,
}

impl Cluster {
    /// Clamped optimal position of the cluster head in `[lo, hi]`.
    fn x(&self, seg: Interval) -> Dbu {
        let x = (self.q / self.e).round() as i64;
        Dbu(x).clamp(seg.lo, (seg.hi - self.w).max(seg.lo))
    }
}

/// One blockage-free span of a row with its committed clusters.
#[derive(Clone, Debug)]
struct Segment {
    span: Interval,
    used: Dbu,
    clusters: Vec<Cluster>,
}

impl Segment {
    /// Final x of a cell of width `w` targeting `x_t`, were it
    /// appended now — simulates the Abacus collapse cascade without
    /// mutating the committed clusters.
    fn trial_x(&self, x_t: Dbu, w: Dbu) -> Dbu {
        let (mut e, mut q, mut cw) = (1.0f64, x_t.0 as f64, w);
        let mut i = self.clusters.len();
        loop {
            let head = Cluster {
                e,
                q,
                w: cw,
                cells: Vec::new(),
            }
            .x(self.span);
            if i == 0 || self.clusters[i - 1].x(self.span) + self.clusters[i - 1].w <= head {
                return head + cw - w;
            }
            i -= 1;
            let prev = &self.clusters[i];
            // merge prev in front: the current group shifts right by
            // prev's width inside the merged cluster
            q = prev.q + (q - e * prev.w.0 as f64);
            e += prev.e;
            cw = prev.w + cw;
        }
    }

    /// Appends the cell and collapses overlapping clusters (the
    /// committed version of [`Self::trial_x`]).
    fn commit(&mut self, inst: InstId, x_t: Dbu, w: Dbu) {
        self.used += w;
        let mut c = Cluster {
            e: 1.0,
            q: x_t.0 as f64,
            w,
            cells: vec![inst],
        };
        while let Some(prev) = self.clusters.last() {
            if prev.x(self.span) + prev.w <= c.x(self.span) {
                break;
            }
            let prev = self.clusters.pop().unwrap_or_else(|| unreachable!());
            let mut merged = Cluster {
                e: prev.e + c.e,
                q: prev.q + (c.q - c.e * prev.w.0 as f64),
                w: prev.w + c.w,
                cells: prev.cells,
            };
            merged.cells.extend(c.cells);
            c = merged;
        }
        self.clusters.push(c);
    }
}

/// Abacus-style row legalization: cells are inserted left-to-right
/// into per-row segments; each insertion collapses abutting cells
/// into clusters placed at their (clamped) least-squares position, so
/// earlier cells shift smoothly instead of fragmenting the row. This
/// is the handoff the analytical placer uses — its input is a smooth
/// overlapping spread for which cluster collapse preserves relative
/// order, where Tetris-style first-fit would tear it apart.
///
/// Same contract as [`legalize`]: no overlaps, on-site x, outside
/// full blockages; cells that fit nowhere are counted in
/// [`LegalizeReport::failed`] and clamped into the die.
pub fn legalize_abacus(
    design: &Design,
    fp: &Floorplan,
    placement: &mut Placement,
    movable: &[InstId],
) -> LegalizeReport {
    let num_rows = fp.num_rows();
    let site = fp.site_width();
    let row_h = fp.row_height();
    let die = fp.die();
    let mut rows: Vec<Vec<Segment>> = (0..num_rows)
        .map(|r| {
            build_row_segments(fp, r)
                .into_iter()
                .map(|span| Segment {
                    // align the left edge once: cell widths are site
                    // multiples, so every abutted cell stays on-site
                    span: Interval::new(span.lo.ceil_to(site).min(span.hi), span.hi),
                    used: Dbu(0),
                    clusters: Vec::new(),
                })
                .collect()
        })
        .collect();

    // Abacus order: left-to-right (ties broken by y then id for
    // determinism)
    let mut order: Vec<InstId> = movable.to_vec();
    order.sort_by_key(|i| {
        (
            placement.pos[i.index()].x,
            placement.pos[i.index()].y,
            i.index(),
        )
    });

    let mut report = LegalizeReport::default();
    for &inst in &order {
        let target = placement.pos[inst.index()];
        let width = placement.rect(design, inst).width();
        let target_row =
            (((target.y - die.lo.y).0 / row_h.0).max(0) as usize).min(num_rows.saturating_sub(1));
        let mut best: Option<(Dbu, usize, usize)> = None; // (cost, row, seg)
        for delta in 0..num_rows {
            let dy = row_h * delta as i64;
            if let Some((cost, ..)) = best {
                if dy >= cost {
                    break;
                }
            }
            let candidates = [
                target_row.checked_sub(delta),
                (delta > 0).then_some(target_row + delta),
            ];
            for row in candidates.into_iter().flatten().filter(|&r| r < num_rows) {
                for (s, seg) in rows[row].iter().enumerate() {
                    if seg.used + width > seg.span.len() {
                        continue;
                    }
                    let x = seg.trial_x(target.x, width);
                    let cost = (x - target.x).abs() + dy;
                    if best.is_none_or(|(c, ..)| cost < c) {
                        best = Some((cost, row, s));
                    }
                }
            }
        }
        match best {
            Some((_, row, s)) => rows[row][s].commit(inst, target.x, width),
            None => {
                report.failed += 1;
                let r = placement.rect(design, inst);
                let mut p = placement.pos[inst.index()];
                p.x = p.x.clamp(die.lo.x, die.hi.x - r.width());
                p.y = p.y.clamp(die.lo.y, die.hi.y - r.height());
                placement.pos[inst.index()] = p;
            }
        }
    }

    // final positions: walk each segment's clusters and lay the cells
    // out site-aligned from the cluster head
    for (row, segs) in rows.iter().enumerate() {
        let y = die.lo.y + row_h * row as i64;
        let orient = if row % 2 == 0 {
            macro3d_geom::Orientation::N
        } else {
            macro3d_geom::Orientation::FS
        };
        for seg in segs {
            for cluster in &seg.clusters {
                let mut x = cluster.x(seg.span).floor_to(site).max(seg.span.lo);
                for &inst in &cluster.cells {
                    let target = placement.pos[inst.index()];
                    // same accounting as Tetris: row distance, not the
                    // free in-row y snap
                    let target_row = (((target.y - die.lo.y).0 / row_h.0).max(0) as usize)
                        .min(num_rows.saturating_sub(1));
                    let dy = row_h * (row.abs_diff(target_row) as i64);
                    placement.pos[inst.index()] = Point::new(x, y);
                    placement.orient[inst.index()] = orient;
                    let disp = (x - target.x).abs() + dy;
                    report.total_disp += disp;
                    report.max_disp = report.max_disp.max(disp);
                    x += placement.rect(design, inst).width();
                }
            }
        }
    }
    if !movable.is_empty() {
        report.mean_disp_um = report.total_disp.to_um() / movable.len() as f64;
    }
    report
}

/// Legalizes `movable` while treating the already-placed `fixed`
/// instances as hard obstacles (incremental / ECO legalization for
/// cells inserted after the main pass).
pub fn legalize_incremental(
    design: &Design,
    fp: &Floorplan,
    placement: &mut Placement,
    movable: &[InstId],
    fixed: &[InstId],
) -> LegalizeReport {
    let mut fp2 = fp.clone();
    for &i in fixed {
        fp2.add_blockage(
            placement.rect(design, i),
            crate::floorplan::BlockageKind::Full,
        );
    }
    legalize(design, &fp2, placement, movable)
}

/// Free intervals of row `r`: the row minus all full blockages.
fn build_row_segments(fp: &Floorplan, r: usize) -> Vec<Interval> {
    let row = fp.row_rect(r);
    let mut cuts: Vec<Interval> = fp
        .blockages
        .iter()
        .filter(|b| matches!(b.kind, BlockageKind::Full))
        .filter(|b| b.rect.overlaps(row))
        .map(|b| Interval::new(b.rect.lo.x.max(row.lo.x), b.rect.hi.x.min(row.hi.x)))
        .collect();
    cuts.sort();
    let mut free = Vec::new();
    let mut x = row.lo.x;
    for c in cuts {
        if c.lo > x {
            free.push(Interval::new(x, c.lo));
        }
        x = x.max(c.hi);
    }
    if x < row.hi.x {
        free.push(Interval::new(x, row.hi.x));
    }
    free
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::count_overlaps;
    use crate::floorplan::BlockageKind;
    use macro3d_geom::Rect;
    use macro3d_tech::{libgen::n28_library, CellClass};
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn random_design(n: usize, seed: u64) -> (Design, Vec<InstId>, Placement) {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let nand = lib.smallest(CellClass::Nand2).expect("nand");
        let mut d = Design::new("t", lib);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut insts = Vec::new();
        for i in 0..n {
            let c = d.add_cell(format!("c{i}"), if i % 2 == 0 { inv } else { nand });
            insts.push(c);
        }
        let mut p = Placement::new(&d);
        for &c in &insts {
            p.pos[c.index()] = Point::from_um(rng.gen_range(0.0..50.0), rng.gen_range(0.0..50.0));
        }
        (d, insts, p)
    }

    fn fp() -> Floorplan {
        Floorplan::new(
            Rect::from_um(0.0, 0.0, 50.0, 48.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        )
    }

    #[test]
    fn legal_result_has_no_overlaps() {
        let (d, insts, mut p) = random_design(800, 1);
        let f = fp();
        let rep = legalize(&d, &f, &mut p, &insts);
        assert_eq!(rep.failed, 0);
        assert_eq!(count_overlaps(&d, &p, &insts), 0);
    }

    #[test]
    fn cells_sit_on_rows_and_sites() {
        let (d, insts, mut p) = random_design(200, 2);
        let f = fp();
        legalize(&d, &f, &mut p, &insts);
        for &i in &insts {
            let pos = p.pos[i.index()];
            assert_eq!((pos.y - f.die().lo.y).0 % f.row_height().0, 0);
            assert_eq!((pos.x - f.die().lo.x).0 % f.site_width().0, 0);
            assert!(f.die().contains_rect(p.rect(&d, i)));
        }
    }

    #[test]
    fn blockages_are_respected() {
        let (d, insts, mut p) = random_design(400, 3);
        let mut f = fp();
        let blocked = Rect::from_um(10.0, 10.0, 30.0, 30.0);
        f.add_blockage(blocked, BlockageKind::Full);
        legalize(&d, &f, &mut p, &insts);
        for &i in &insts {
            assert!(
                !p.rect(&d, i).overlaps(blocked),
                "cell {i} inside blockage at {:?}",
                p.pos[i.index()]
            );
        }
    }

    #[test]
    fn displacement_grows_with_congestion() {
        // the same cells in a half-size die displace further
        let (d, insts, p0) = random_design(600, 4);
        let mut p1 = p0.clone();
        let mut p2 = p0.clone();
        let loose = fp();
        let tight = Floorplan::new(
            Rect::from_um(0.0, 0.0, 50.0, 12.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        );
        let r1 = legalize(&d, &loose, &mut p1, &insts);
        let r2 = legalize(&d, &tight, &mut p2, &insts);
        assert!(r2.total_disp > r1.total_disp);
    }

    #[test]
    fn overfull_die_reports_failures() {
        let (d, insts, mut p) = random_design(4000, 5);
        let tiny = Floorplan::new(
            Rect::from_um(0.0, 0.0, 10.0, 6.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        );
        let rep = legalize(&d, &tiny, &mut p, &insts);
        assert!(rep.failed > 0);
    }

    #[test]
    fn abacus_result_is_legal_and_on_grid() {
        let (d, insts, mut p) = random_design(800, 11);
        let f = fp();
        let rep = legalize_abacus(&d, &f, &mut p, &insts);
        assert_eq!(rep.failed, 0);
        assert_eq!(count_overlaps(&d, &p, &insts), 0);
        for &i in &insts {
            let pos = p.pos[i.index()];
            assert_eq!((pos.y - f.die().lo.y).0 % f.row_height().0, 0);
            assert_eq!((pos.x - f.die().lo.x).0 % f.site_width().0, 0);
            assert!(f.die().contains_rect(p.rect(&d, i)));
        }
    }

    #[test]
    fn abacus_respects_blockages() {
        let (d, insts, mut p) = random_design(400, 12);
        let mut f = fp();
        let blocked = Rect::from_um(10.0, 10.0, 30.0, 30.0);
        f.add_blockage(blocked, BlockageKind::Full);
        legalize_abacus(&d, &f, &mut p, &insts);
        for &i in &insts {
            assert!(
                !p.rect(&d, i).overlaps(blocked),
                "cell {i} inside blockage at {:?}",
                p.pos[i.index()]
            );
        }
    }

    #[test]
    fn abacus_preserves_order_in_a_packed_row() {
        // cells spread along one row with slight overlaps: cluster
        // collapse must keep their left-to-right order intact
        let (d, insts, mut p) = random_design(40, 13);
        for (k, &i) in insts.iter().enumerate() {
            p.pos[i.index()] = Point::from_um(0.55 * k as f64, 0.3);
        }
        let f = fp();
        let rep = legalize_abacus(&d, &f, &mut p, &insts);
        assert_eq!(rep.failed, 0);
        let mut same_row: Vec<(Dbu, usize)> = insts
            .iter()
            .enumerate()
            .filter(|(_, i)| p.pos[i.index()].y == f.die().lo.y)
            .map(|(k, i)| (p.pos[i.index()].x, k))
            .collect();
        assert!(same_row.len() > 10, "expected most cells in row 0");
        same_row.sort();
        for w in same_row.windows(2) {
            assert!(w[0].1 < w[1].1, "row order changed: {:?}", w);
        }
    }

    #[test]
    fn abacus_overfull_die_reports_failures() {
        let (d, insts, mut p) = random_design(4000, 14);
        let tiny = Floorplan::new(
            Rect::from_um(0.0, 0.0, 10.0, 6.0),
            Dbu::from_um(1.2),
            Dbu::from_um(0.2),
        );
        let rep = legalize_abacus(&d, &tiny, &mut p, &insts);
        assert!(rep.failed > 0);
    }

    #[test]
    fn abacus_displacement_no_worse_than_tetris_on_spread_input() {
        // on a smooth overlapping spread (the analytical placer's
        // output shape) cluster collapse should move cells less than
        // first-fit
        let (d, insts, p0) = random_design(1200, 15);
        let f = fp();
        let mut pa = p0.clone();
        let mut pt = p0.clone();
        let ra = legalize_abacus(&d, &f, &mut pa, &insts);
        let rt = legalize(&d, &f, &mut pt, &insts);
        assert_eq!(ra.failed, 0);
        assert!(
            ra.total_disp <= rt.total_disp * 2,
            "abacus {} vs tetris {}",
            ra.total_disp,
            rt.total_disp
        );
    }

    #[test]
    fn rows_alternate_orientation() {
        let (d, insts, mut p) = random_design(100, 6);
        let f = fp();
        legalize(&d, &f, &mut p, &insts);
        for &i in &insts {
            let row = ((p.pos[i.index()].y - f.die().lo.y).0 / f.row_height().0) as usize;
            let expect = if row.is_multiple_of(2) {
                macro3d_geom::Orientation::N
            } else {
                macro3d_geom::Orientation::FS
            };
            assert_eq!(p.orient[i.index()], expect);
        }
    }
}
