//! Port location assignment on die edges.

use macro3d_geom::{Dbu, Point, Rect};
use macro3d_netlist::{Design, PortId, Side};

/// Physical locations of every top-level port.
///
/// Per the paper's design setup, all tile pins sit on the die
/// boundary (in the top metal), and aligned pairs — a NoC output and
/// the matching input on the opposite edge — share the same x (for
/// north/south) or y (for east/west) coordinate so tile instances
/// abut without extra routing.
#[derive(Clone, Debug)]
pub struct PortPlan {
    /// Location per port.
    pub pos: Vec<Point>,
}

impl PortPlan {
    /// Assigns port locations along the die edges.
    ///
    /// Side-constrained ports are distributed uniformly along their
    /// edge in port-id order; aligned pairs are placed at the same
    /// offset on opposite edges. Unconstrained ports land on the west
    /// edge.
    pub fn assign(design: &Design, die: Rect) -> Self {
        let mut pos = vec![die.lo; design.num_ports()];
        // group by effective side
        let mut by_side: [Vec<PortId>; 4] = Default::default();
        let mut align_offset: std::collections::HashMap<u32, i64> =
            std::collections::HashMap::new();

        for id in design.port_ids() {
            let side = design.port(id).side.unwrap_or(Side::West);
            by_side[side_ix(side)].push(id);
        }

        for (six, ports) in by_side.iter().enumerate() {
            let side = IX_SIDE[six];
            let n = ports.len() as i64;
            if n == 0 {
                continue;
            }
            let span = match side {
                Side::North | Side::South => die.width(),
                Side::East | Side::West => die.height(),
            };
            let step = span.0 / (n + 1);
            for (k, &id) in ports.iter().enumerate() {
                // aligned pairs reuse the first member's offset
                let offset = if let Some(key) = design.port(id).align_key {
                    *align_offset.entry(key).or_insert((k as i64 + 1) * step)
                } else {
                    (k as i64 + 1) * step
                };
                pos[id.index()] = place_on(die, side, Dbu(offset));
            }
        }
        PortPlan { pos }
    }

    /// Location of a port.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn position(&self, id: PortId) -> Point {
        self.pos[id.index()]
    }

    /// Returns a copy with every location scaled about the origin
    /// (used by the C2D enlarged-floorplan mapping).
    pub fn scaled(&self, factor: f64) -> PortPlan {
        PortPlan {
            pos: self.pos.iter().map(|p| p.scale(factor)).collect(),
        }
    }
}

const IX_SIDE: [Side; 4] = [Side::North, Side::South, Side::East, Side::West];

fn side_ix(side: Side) -> usize {
    match side {
        Side::North => 0,
        Side::South => 1,
        Side::East => 2,
        Side::West => 3,
    }
}

fn place_on(die: Rect, side: Side, offset: Dbu) -> Point {
    match side {
        Side::North => Point::new(die.lo.x + offset, die.hi.y),
        Side::South => Point::new(die.lo.x + offset, die.lo.y),
        Side::East => Point::new(die.hi.x, die.lo.y + offset),
        Side::West => Point::new(die.lo.x, die.lo.y + offset),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::{libgen::n28_library, PinDir};
    use std::sync::Arc;

    fn design_with_ports() -> Design {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib);
        let a = d.add_port("n_out", PinDir::Output, Some(Side::North));
        let b = d.add_port("s_in", PinDir::Input, Some(Side::South));
        d.align_ports(a, b);
        d.add_port("w0", PinDir::Input, Some(Side::West));
        d.add_port("free", PinDir::Input, None);
        d
    }

    #[test]
    fn ports_land_on_their_edges() {
        let d = design_with_ports();
        let die = Rect::from_um(0.0, 0.0, 100.0, 80.0);
        let plan = PortPlan::assign(&d, die);
        let n = plan.position(PortId(0));
        assert_eq!(n.y, die.hi.y);
        let s = plan.position(PortId(1));
        assert_eq!(s.y, die.lo.y);
        let w = plan.position(PortId(2));
        assert_eq!(w.x, die.lo.x);
        // unconstrained defaults to west
        assert_eq!(plan.position(PortId(3)).x, die.lo.x);
    }

    #[test]
    fn aligned_pairs_share_coordinate() {
        let d = design_with_ports();
        let die = Rect::from_um(0.0, 0.0, 100.0, 80.0);
        let plan = PortPlan::assign(&d, die);
        assert_eq!(plan.position(PortId(0)).x, plan.position(PortId(1)).x);
    }

    #[test]
    fn scaled_plan() {
        let d = design_with_ports();
        let plan = PortPlan::assign(&d, Rect::from_um(0.0, 0.0, 100.0, 80.0));
        let s = plan.scaled(0.5);
        assert_eq!(
            s.position(PortId(0)).x,
            plan.position(PortId(0)).x.scale(0.5)
        );
    }
}
