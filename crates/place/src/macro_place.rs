//! Macro placement strategies.
//!
//! Three deterministic packers cover the floorplans in the paper's
//! Fig. 4:
//!
//! * [`pack_ring`] — the 2D style: macros in columns along the west
//!   and east die edges, leaving the centre for standard cells;
//! * [`pack_shelves`] — the MoL macro-die style: macros shelf-packed
//!   over the (nearly full) macro die, and also used for the subset of
//!   macros that stays on the logic die;
//! * [`pack_balanced`] — the "balanced floorplan" (BF) S2D variant:
//!   macros paired across the two dies with maximal overlap, which
//!   converts partial blockages into full ones.

use crate::floorplan::MacroPlacement;
use macro3d_geom::{Dbu, Point, Rect, Size};
use macro3d_netlist::{Design, InstId};
use macro3d_tech::stack::DieRole;

/// Footprint of a macro including its halo.
fn padded_size(design: &Design, inst: InstId, halo: Dbu) -> Size {
    let macro3d_netlist::Master::Macro(m) = design.inst(inst).master else {
        panic!("instance {inst} is not a macro");
    };
    let s = design.macro_master(m).size;
    Size::new(s.w + halo * 2, s.h + halo * 2)
}

fn placement_at(
    design: &Design,
    inst: InstId,
    padded_lo: Point,
    halo: Dbu,
    die: DieRole,
) -> MacroPlacement {
    let macro3d_netlist::Master::Macro(m) = design.inst(inst).master else {
        panic!("instance {inst} is not a macro");
    };
    let s = design.macro_master(m).size;
    MacroPlacement {
        inst,
        rect: Rect::from_origin_size(Point::new(padded_lo.x + halo, padded_lo.y + halo), s),
        die,
    }
}

/// Shelf-packs macros bottom-up inside `region`, assigning them to
/// `die`. Returns `None` if they do not fit.
///
/// # Panics
///
/// Panics if any instance is not a macro.
pub fn pack_shelves(
    design: &Design,
    macros: &[InstId],
    region: Rect,
    halo: Dbu,
    die: DieRole,
) -> Option<Vec<MacroPlacement>> {
    let mut order: Vec<InstId> = macros.to_vec();
    order.sort_by(|&a, &b| {
        let ha = padded_size(design, a, halo).h;
        let hb = padded_size(design, b, halo).h;
        hb.cmp(&ha).then(a.cmp(&b))
    });

    let mut out = Vec::with_capacity(order.len());
    let mut shelf_y = region.lo.y;
    let mut shelf_h = Dbu(0);
    let mut cursor_x = region.lo.x;
    for inst in order {
        let s = padded_size(design, inst, halo);
        if cursor_x + s.w > region.hi.x {
            // new shelf
            shelf_y += shelf_h;
            shelf_h = Dbu(0);
            cursor_x = region.lo.x;
        }
        if cursor_x + s.w > region.hi.x || shelf_y + s.h > region.hi.y {
            return None;
        }
        out.push(placement_at(
            design,
            inst,
            Point::new(cursor_x, shelf_y),
            halo,
            die,
        ));
        cursor_x += s.w;
        shelf_h = shelf_h.max(s.h);
    }
    Some(out)
}

/// Packs macros around the die periphery (the 2D floorplans of
/// Fig. 4): shelves are laid along the west, east, north and south
/// edges in turn, spiralling inward and keeping a contiguous centre
/// region free for standard cells. Returns `None` if the centre
/// would vanish.
///
/// # Panics
///
/// Panics if any instance is not a macro.
pub fn pack_ring(
    design: &Design,
    macros: &[InstId],
    die_rect: Rect,
    halo: Dbu,
) -> Option<Vec<MacroPlacement>> {
    let mut order: Vec<InstId> = macros.to_vec();
    order.sort_by(|&a, &b| {
        let aa = padded_size(design, a, halo);
        let bb = padded_size(design, b, halo);
        (bb.w.0 * bb.h.0).cmp(&(aa.w.0 * aa.h.0)).then(a.cmp(&b))
    });

    let mut out = Vec::with_capacity(order.len());
    let mut inner = die_rect; // macro-free core, shrinks as shelves close
    let mut queue: std::collections::VecDeque<InstId> = order.into();
    let sides = [0usize, 1, 2, 3]; // W, E, N, S
    let mut side_ix = 0;

    while let Some(&first) = queue.front() {
        let first_size = padded_size(design, first, halo);
        // shelf thickness from the largest remaining item on this side
        let side = sides[side_ix % 4];
        side_ix += 1;
        let vertical = side < 2; // W/E shelves run vertically
        let thickness = if vertical { first_size.w } else { first_size.h };
        let span = if vertical {
            inner.height()
        } else {
            inner.width()
        };
        if thickness.0 <= 0 || span.0 <= 0 {
            return None;
        }
        // the centre must survive: demand at least 25% of the die side
        let min_core = if vertical {
            die_rect.width() / 4
        } else {
            die_rect.height() / 4
        };
        if (vertical && inner.width() - thickness < min_core)
            || (!vertical && inner.height() - thickness < min_core)
        {
            // cannot close another shelf on this axis; try the other
            // axis once, else fail
            let other_ok = if vertical {
                inner.height() - thickness >= die_rect.height() / 4
            } else {
                inner.width() - thickness >= die_rect.width() / 4
            };
            if !other_ok && side_ix > 8 {
                return None;
            }
            continue;
        }

        // fill the shelf
        let mut cursor = if vertical { inner.lo.y } else { inner.lo.x };
        let limit = if vertical { inner.hi.y } else { inner.hi.x };
        let mut placed_any = false;
        while let Some(&inst) = queue.front() {
            let size = padded_size(design, inst, halo);
            let (extent, fits_thickness) = if vertical {
                (size.h, size.w <= thickness)
            } else {
                (size.w, size.h <= thickness)
            };
            if !fits_thickness || cursor + extent > limit {
                break;
            }
            let lo = match side {
                0 => Point::new(inner.lo.x, cursor),          // west
                1 => Point::new(inner.hi.x - size.w, cursor), // east
                2 => Point::new(cursor, inner.hi.y - size.h), // north
                _ => Point::new(cursor, inner.lo.y),          // south
            };
            out.push(placement_at(design, inst, lo, halo, DieRole::Logic));
            queue.pop_front();
            cursor += extent;
            placed_any = true;
        }
        if !placed_any {
            // the head item does not fit anywhere on this shelf; give
            // other sides a chance, then give up
            if side_ix > 12 {
                return None;
            }
            continue;
        }
        // close the shelf: shrink the inner region
        inner = match side {
            0 => Rect::new(Point::new(inner.lo.x + thickness, inner.lo.y), inner.hi),
            1 => Rect::new(inner.lo, Point::new(inner.hi.x - thickness, inner.hi.y)),
            2 => Rect::new(inner.lo, Point::new(inner.hi.x, inner.hi.y - thickness)),
            _ => Rect::new(Point::new(inner.lo.x, inner.lo.y + thickness), inner.hi),
        };
    }
    Some(out)
}

/// Packs macros as horizontal bands interleaved with standard-cell
/// strips (the style of the paper's Fig. 5 large-cache 2D layout):
/// after each macro shelf, a cell strip of height proportional to
/// `cell_fraction` is left free. Preferred over [`pack_ring`] when
/// macros dominate the die, since it keeps every cell close to the
/// macros it talks to and leaves routing/feedthrough room.
///
/// Returns `None` if the bands overflow the die.
///
/// # Panics
///
/// Panics if any instance is not a macro, or `cell_fraction` is not
/// in `[0, 0.9]`.
pub fn pack_bands(
    design: &Design,
    macros: &[InstId],
    die_rect: Rect,
    halo: Dbu,
    cell_fraction: f64,
) -> Option<Vec<MacroPlacement>> {
    assert!(
        (0.0..=0.9).contains(&cell_fraction),
        "cell fraction out of range"
    );
    let mut order: Vec<InstId> = macros.to_vec();
    order.sort_by(|&a, &b| {
        let ha = padded_size(design, a, halo).h;
        let hb = padded_size(design, b, halo).h;
        hb.cmp(&ha).then(a.cmp(&b))
    });

    let gap_ratio = cell_fraction / (1.0 - cell_fraction).max(0.1);
    let mut out = Vec::with_capacity(order.len());
    let mut shelf_y = die_rect.lo.y;
    let mut shelf_h = Dbu(0);
    let mut cursor_x = die_rect.lo.x;
    for inst in order {
        let s = padded_size(design, inst, halo);
        if cursor_x + s.w > die_rect.hi.x {
            // close the band: skip a proportional cell strip
            shelf_y += shelf_h + shelf_h.scale(gap_ratio);
            shelf_h = Dbu(0);
            cursor_x = die_rect.lo.x;
        }
        if cursor_x + s.w > die_rect.hi.x || shelf_y + s.h > die_rect.hi.y {
            return None;
        }
        out.push(placement_at(
            design,
            inst,
            Point::new(cursor_x, shelf_y),
            halo,
            DieRole::Logic,
        ));
        cursor_x += s.w;
        shelf_h = shelf_h.max(s.h);
    }
    Some(out)
}

/// Packs macros in overlapping pairs across the two dies (the BF S2D
/// floorplan): macros are sorted by size and placed two-per-site, one
/// on each die, so partial blockages become full blockages. Returns
/// `None` if the pair boxes do not fit.
///
/// # Panics
///
/// Panics if any instance is not a macro.
pub fn pack_balanced(
    design: &Design,
    macros: &[InstId],
    die_rect: Rect,
    halo: Dbu,
) -> Option<Vec<MacroPlacement>> {
    let mut order: Vec<InstId> = macros.to_vec();
    order.sort_by(|&a, &b| {
        let aa = padded_size(design, a, halo);
        let bb = padded_size(design, b, halo);
        (bb.w.0 * bb.h.0).cmp(&(aa.w.0 * aa.h.0)).then(a.cmp(&b))
    });

    let mut out = Vec::with_capacity(order.len());
    let mut shelf_y = die_rect.lo.y;
    let mut shelf_h = Dbu(0);
    let mut cursor_x = die_rect.lo.x;
    let mut k = 0;
    while k < order.len() {
        let pair: Vec<InstId> = order[k..(k + 2).min(order.len())].to_vec();
        let mut box_w = Dbu(0);
        let mut box_h = Dbu(0);
        for &i in &pair {
            let s = padded_size(design, i, halo);
            box_w = box_w.max(s.w);
            box_h = box_h.max(s.h);
        }
        if cursor_x + box_w > die_rect.hi.x {
            shelf_y += shelf_h;
            shelf_h = Dbu(0);
            cursor_x = die_rect.lo.x;
        }
        if cursor_x + box_w > die_rect.hi.x || shelf_y + box_h > die_rect.hi.y {
            return None;
        }
        for (j, &inst) in pair.iter().enumerate() {
            let die = if j == 0 {
                DieRole::Logic
            } else {
                DieRole::Macro
            };
            out.push(placement_at(
                design,
                inst,
                Point::new(cursor_x, shelf_y),
                halo,
                die,
            ));
        }
        cursor_x += box_w;
        shelf_h = shelf_h.max(box_h);
        k += 2;
    }
    Some(out)
}

/// True if no two placements *on the same die* overlap and all lie
/// within `die_rect` (used by floorplan sanity tests).
pub fn is_legal(placements: &[MacroPlacement], die_rect: Rect) -> bool {
    for (i, a) in placements.iter().enumerate() {
        if !die_rect.contains_rect(a.rect) {
            return false;
        }
        for b in &placements[i + 1..] {
            if a.die == b.die && a.rect.overlaps(b.rect) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_sram::MemoryCompiler;
    use macro3d_tech::libgen::n28_library;
    use std::sync::Arc;

    fn design_with_macros(shapes: &[(u32, u32)]) -> (Design, Vec<InstId>) {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib);
        let c = MemoryCompiler::n28();
        let mut insts = Vec::new();
        for (k, &(w, b)) in shapes.iter().enumerate() {
            let mm = d.add_macro_master(c.sram(&format!("s{k}"), w, b));
            insts.push(d.add_macro_in(format!("m{k}"), mm, 0));
        }
        (d, insts)
    }

    #[test]
    fn shelves_fit_and_are_legal() {
        let (d, insts) = design_with_macros(&[(2048, 128); 8]);
        let die = Rect::from_um(0.0, 0.0, 800.0, 800.0);
        let p = pack_shelves(&d, &insts, die, Dbu::from_um(2.0), DieRole::Macro)
            .expect("8 x 32KB fits in 0.64 mm2");
        assert_eq!(p.len(), 8);
        assert!(is_legal(&p, die));
        assert!(p.iter().all(|m| m.die == DieRole::Macro));
    }

    #[test]
    fn shelves_overflow_returns_none() {
        let (d, insts) = design_with_macros(&[(2048, 128); 8]);
        let die = Rect::from_um(0.0, 0.0, 300.0, 300.0);
        assert!(pack_shelves(&d, &insts, die, Dbu::from_um(2.0), DieRole::Macro).is_none());
    }

    #[test]
    fn ring_leaves_center_free() {
        let (d, insts) = design_with_macros(&[(2048, 128), (2048, 128), (1024, 128), (512, 128)]);
        let die = Rect::from_um(0.0, 0.0, 1000.0, 1000.0);
        let p = pack_ring(&d, &insts, die, Dbu::from_um(2.0)).expect("fits");
        assert!(is_legal(&p, die));
        // the die centre is macro-free
        let center = Rect::from_um(450.0, 450.0, 550.0, 550.0);
        assert!(p.iter().all(|m| !m.rect.overlaps(center)));
        // macros hug the edges: each touches the left or right third
        for m in &p {
            let cx = m.rect.center().x.to_um();
            assert!(!(450.0..=550.0).contains(&cx), "macro at centre x {cx}");
        }
    }

    #[test]
    fn bands_interleave_cell_strips() {
        let (d, insts) = design_with_macros(&[(2048, 128); 6]);
        let die = Rect::from_um(0.0, 0.0, 900.0, 1_200.0);
        let p = pack_bands(&d, &insts, die, Dbu::from_um(2.0), 0.3).expect("fits");
        assert!(is_legal(&p, die));
        assert_eq!(p.len(), 6);
        // two bands with a gap between them: the y extents of shelf 1
        // and shelf 2 macros must not be adjacent
        let mut ys: Vec<i64> = p.iter().map(|m| m.rect.lo.y.nm()).collect();
        ys.sort_unstable();
        ys.dedup();
        assert!(ys.len() >= 2, "multiple bands");
        let first_top = p
            .iter()
            .filter(|m| m.rect.lo.y.nm() == ys[0])
            .map(|m| m.rect.hi.y.nm())
            .max()
            .expect("band 1");
        assert!(ys[1] > first_top, "cell strip between bands");
    }

    #[test]
    fn bands_overflow_returns_none() {
        let (d, insts) = design_with_macros(&[(2048, 128); 8]);
        let die = Rect::from_um(0.0, 0.0, 400.0, 400.0);
        assert!(pack_bands(&d, &insts, die, Dbu::from_um(2.0), 0.3).is_none());
    }

    #[test]
    fn balanced_overlaps_pairs_across_dies() {
        let (d, insts) = design_with_macros(&[(2048, 128); 4]);
        let die = Rect::from_um(0.0, 0.0, 600.0, 600.0);
        let p = pack_balanced(&d, &insts, die, Dbu::from_um(2.0)).expect("fits");
        assert_eq!(p.len(), 4);
        assert!(is_legal(&p, die));
        let logic: Vec<_> = p.iter().filter(|m| m.die == DieRole::Logic).collect();
        let upper: Vec<_> = p.iter().filter(|m| m.die == DieRole::Macro).collect();
        assert_eq!(logic.len(), 2);
        assert_eq!(upper.len(), 2);
        // pairs coincide
        for l in &logic {
            assert!(
                upper.iter().any(|u| u.rect == l.rect),
                "logic-die macro unpaired"
            );
        }
    }
}
