//! Greedy detailed-placement refinement.

use crate::hpwl::net_hpwl;
use crate::placement::Placement;
use crate::ports::PortPlan;
use macro3d_geom::Dbu;
use macro3d_netlist::{Design, InstId, NetId};

/// One pass of same-row neighbour swapping: adjacent cells in a row
/// are swapped when that reduces the summed HPWL of their incident
/// nets. Returns the number of swaps applied.
///
/// Swapping preserves legality when both cells have equal width; for
/// unequal widths the pair is repacked left-to-right within their
/// combined span, which also preserves legality.
pub fn swap_pass(
    design: &Design,
    placement: &mut Placement,
    ports: &PortPlan,
    movable: &[InstId],
) -> usize {
    // bucket by row (y coordinate)
    let mut rows: std::collections::BTreeMap<Dbu, Vec<InstId>> = std::collections::BTreeMap::new();
    for &i in movable {
        rows.entry(placement.pos[i.index()].y).or_default().push(i);
    }
    // inst -> incident small nets
    let mut inst_nets: Vec<Vec<NetId>> = vec![Vec::new(); design.num_insts()];
    for n in design.net_ids() {
        let pins = &design.net(n).pins;
        if pins.len() < 2 || pins.len() > 32 {
            continue;
        }
        for p in pins {
            if let Some(i) = p.instance() {
                inst_nets[i.index()].push(n);
            }
        }
    }

    let mut swaps = 0;
    for cells in rows.values_mut() {
        cells.sort_by_key(|i| placement.pos[i.index()].x);
        for k in 0..cells.len().saturating_sub(1) {
            let (a, b) = (cells[k], cells[k + 1]);
            let cost_before = pair_cost(design, placement, ports, &inst_nets, a, b);
            let (pa, pb) = (placement.pos[a.index()], placement.pos[b.index()]);
            let wa = placement.rect(design, a).width();
            let wb = placement.rect(design, b).width();
            let fits;
            if wa == wb {
                // true position exchange — always legal
                placement.pos[a.index()] = pb;
                placement.pos[b.index()] = pa;
                fits = true;
            } else {
                // repack the pair left-to-right within its span
                placement.pos[b.index()] = pa;
                placement.pos[a.index()] = macro3d_geom::Point::new(pa.x + wb, pa.y);
                fits = placement.pos[a.index()].x + wa <= pb.x + wb;
            }
            let cost_after = pair_cost(design, placement, ports, &inst_nets, a, b);
            if !fits || cost_after >= cost_before {
                placement.pos[a.index()] = pa;
                placement.pos[b.index()] = pb;
            } else {
                cells.swap(k, k + 1);
                swaps += 1;
            }
        }
    }
    swaps
}

fn pair_cost(
    design: &Design,
    placement: &Placement,
    ports: &PortPlan,
    inst_nets: &[Vec<NetId>],
    a: InstId,
    b: InstId,
) -> Dbu {
    let mut seen = std::collections::HashSet::new();
    let mut cost = Dbu(0);
    for &n in inst_nets[a.index()].iter().chain(&inst_nets[b.index()]) {
        if seen.insert(n) {
            cost += net_hpwl(design, placement, ports, n);
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hpwl::total_hpwl;
    use macro3d_geom::Point;
    use macro3d_netlist::PinRef;
    use macro3d_tech::{libgen::n28_library, CellClass, PinDir};
    use std::sync::Arc;

    #[test]
    fn swap_untangles_crossed_pair() {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib);
        let pw = d.add_port("w", PinDir::Input, Some(macro3d_netlist::Side::West));
        let pe = d.add_port("e", PinDir::Input, Some(macro3d_netlist::Side::East));
        let a = d.add_cell("a", inv); // wants to be near west
        let b = d.add_cell("b", inv); // wants to be near east
        let nw = d.add_net("nw");
        d.connect(nw, PinRef::Port(pw));
        d.connect(nw, PinRef::inst(a, 0));
        let ne = d.add_net("ne");
        d.connect(ne, PinRef::Port(pe));
        d.connect(ne, PinRef::inst(b, 0));
        // outputs dangle (fine for this test): give them nets
        let oa = d.add_net("oa");
        d.connect(oa, PinRef::inst(a, 1));
        let ob = d.add_net("ob");
        d.connect(ob, PinRef::inst(b, 1));

        let ports = PortPlan {
            pos: vec![Point::from_um(0.0, 0.0), Point::from_um(100.0, 0.0)],
        };
        let mut p = Placement::new(&d);
        // crossed: a sits east, b sits west, same row
        p.pos[a.index()] = Point::from_um(60.0, 0.0);
        p.pos[b.index()] = Point::from_um(59.0, 0.0);

        let before = total_hpwl(&d, &p, &ports);
        let swaps = swap_pass(&d, &mut p, &ports, &[a, b]);
        let after = total_hpwl(&d, &p, &ports);
        assert_eq!(swaps, 1);
        assert!(after < before);
        assert!(p.pos[a.index()].x < p.pos[b.index()].x);
    }

    #[test]
    fn no_swap_when_already_good() {
        let lib = Arc::new(n28_library(1.0));
        let inv = lib.smallest(CellClass::Inv).expect("inv");
        let mut d = Design::new("t", lib);
        let a = d.add_cell("a", inv);
        let b = d.add_cell("b", inv);
        let n = d.add_net("n");
        d.connect(n, PinRef::inst(a, 1));
        d.connect(n, PinRef::inst(b, 0));
        let ports = PortPlan { pos: vec![] };
        let mut p = Placement::new(&d);
        p.pos[a.index()] = Point::from_um(0.0, 0.0);
        p.pos[b.index()] = Point::from_um(10.0, 0.0);
        assert_eq!(swap_pass(&d, &mut p, &ports, &[a, b]), 0);
    }
}
