//! Integration tests over tile configuration variants.

use macro3d_netlist::DesignStats;
use macro3d_soc::{generate_tile, TileConfig};

fn fast(cfg: TileConfig) -> TileConfig {
    cfg.with_scale(64.0)
}

#[test]
fn n40_memory_die_grows_macros_only() {
    let base = generate_tile(&fast(TileConfig::small_cache()));
    let n40 = generate_tile(&fast(TileConfig::small_cache().with_n40_memory()));
    let sb = DesignStats::compute(&base.design);
    let s40 = DesignStats::compute(&n40.design);
    assert_eq!(sb.num_macros, s40.num_macros, "same bank structure");
    assert!(
        s40.macro_area_um2 > 1.5 * sb.macro_area_um2,
        "N40 bitcells are bigger: {} vs {}",
        s40.macro_area_um2,
        sb.macro_area_um2
    );
    // logic is untouched
    assert_eq!(sb.num_cells, s40.num_cells);
    assert!(n40.design.validate().is_ok());
}

#[test]
fn banked_caches_get_read_muxes() {
    // small cache: L3 = 256 kB -> 8 banks -> read muxes exist
    let tile = generate_tile(&fast(TileConfig::small_cache()));
    let mux_cells = tile
        .design
        .inst_ids()
        .filter(|&i| tile.design.inst(i).name.contains("_rdmux"))
        .count();
    assert!(mux_cells > 0, "multi-bank L3 must have per-bank read muxes");
    assert!(tile.design.validate().is_ok());
}

#[test]
fn large_cache_tile_has_more_banks_than_small() {
    let small = generate_tile(&fast(TileConfig::small_cache()));
    let large = generate_tile(&fast(TileConfig::large_cache()));
    let ss = DesignStats::compute(&small.design);
    let sl = DesignStats::compute(&large.design);
    assert!(sl.num_macros > ss.num_macros);
    assert!(sl.macro_area_um2 > 3.0 * ss.macro_area_um2);
    assert!(large.design.validate().is_ok());
}

#[test]
fn seed_changes_netlist_but_not_structure() {
    let a = generate_tile(&fast(TileConfig::small_cache()));
    let b = generate_tile(&fast(TileConfig::small_cache().with_seed(999)));
    let sa = DesignStats::compute(&a.design);
    let sb = DesignStats::compute(&b.design);
    assert_eq!(sa.num_macros, sb.num_macros);
    assert_eq!(a.design.num_ports(), b.design.num_ports());
    // gate mixes differ (probabilistic): at least the FF counts should
    // not be identical for a different seed (overwhelmingly likely)
    assert!(sa.num_cells.abs_diff(sb.num_cells) < sa.num_cells / 2);
}
