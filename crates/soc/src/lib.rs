#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! OpenPiton-like tile netlist generator.
//!
//! The paper's benchmark is an OpenPiton tile: a 64-bit out-of-order
//! RISC-V Ariane core, three cache levels (L1 split I/D, private L2,
//! shared L3 slice) and three parallel NoC routers, with inter-tile
//! paths cut at registered boundaries and constrained to half a clock
//! cycle. OpenPiton's RTL plus a commercial synthesis flow are not
//! available here, so this crate generates a *structural statistical
//! equivalent*: per-module gate budgets calibrated to the paper's
//! logic areas, Rent's-rule-like local connectivity inside modules
//! ([`macro3d_netlist::rent`]), registered module boundaries,
//! memory-compiler macros for every cache array, and NoC ports with
//! the paper's edge-alignment and half-cycle constraints.
//!
//! # Examples
//!
//! ```no_run
//! use macro3d_soc::{generate_tile, TileConfig};
//!
//! let cfg = TileConfig::small_cache().with_scale(32.0);
//! let tile = generate_tile(&cfg);
//! assert!(tile.design.validate().is_ok());
//! assert!(!tile.constraints.half_cycle_ports.is_empty());
//! ```

pub mod cache;
pub mod config;
pub mod noc;
pub mod sdc;
pub mod tile;

pub use config::TileConfig;
pub use sdc::TimingConstraints;
pub use tile::{generate_tile, TileNetlist};
