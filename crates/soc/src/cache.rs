//! Cache subsystem generation: controller logic + SRAM macro banks.

use macro3d_netlist::rent::{generate_logic, LogicIo, LogicSpec};
use macro3d_netlist::{Design, InstId, NetId, PinRef};
use macro3d_sram::{MemoryCompiler, PinClass};
use rand::rngs::SmallRng;
use std::collections::HashMap;

/// Maximum SRAM bank capacity in kB; larger caches are banked.
pub const MAX_BANK_KB: u32 = 32;
/// Cache line size in bytes.
pub const LINE_BYTES: u32 = 64;
/// Data bus width of one bank access, bits.
pub const BANK_BITS: u32 = 128;
/// Tag entry width, bits.
pub const TAG_BITS: u32 = 28;
/// Width of a bank's local read bus after the per-bank read mux.
pub const BANK_OUT_BITS: u32 = 16;

/// Deduplicating catalogue of SRAM macro masters.
#[derive(Default)]
pub struct MacroCatalog {
    by_shape: HashMap<(u32, u32), macro3d_netlist::MacroMasterId>,
    compiler: MemoryCompiler,
}

impl MacroCatalog {
    /// Creates a catalogue using the N28 memory compiler.
    pub fn new() -> Self {
        MacroCatalog::with_compiler(MemoryCompiler::n28())
    }

    /// Creates a catalogue over an explicit compiler (e.g.
    /// [`MemoryCompiler::n40`] for a heterogeneous-node memory die).
    pub fn with_compiler(compiler: MemoryCompiler) -> Self {
        MacroCatalog {
            by_shape: HashMap::new(),
            compiler,
        }
    }

    /// Master for a `words × bits` SRAM, compiling it on first use.
    pub fn master(
        &mut self,
        design: &mut Design,
        words: u32,
        bits: u32,
    ) -> macro3d_netlist::MacroMasterId {
        if let Some(&m) = self.by_shape.get(&(words, bits)) {
            return m;
        }
        let def = self
            .compiler
            .sram(&format!("sram_{words}x{bits}"), words, bits);
        let id = design.add_macro_master(def);
        self.by_shape.insert((words, bits), id);
        id
    }
}

/// The instances and nets created for one cache level.
#[derive(Clone, Debug)]
pub struct CacheInsts {
    /// Controller standard cells.
    pub ctrl: Vec<InstId>,
    /// Data-array macro instances.
    pub data_macros: Vec<InstId>,
    /// Tag-array macro instances.
    pub tag_macros: Vec<InstId>,
}

/// Parameters for one cache level.
pub struct CacheSpec<'a> {
    /// Name prefix, e.g. `"l2"`.
    pub name: &'a str,
    /// Capacity in kB.
    pub capacity_kb: u32,
    /// Controller gate count (already scale-compressed).
    pub ctrl_gates: usize,
    /// Group tag for all created instances.
    pub group: u32,
    /// Nets the controller samples (client requests, lower-level
    /// responses).
    pub ext_in: &'a [NetId],
    /// Nets the controller must drive (client responses, lower-level
    /// requests).
    pub drive: &'a [NetId],
}

/// Data bank shapes (words, bits, count) for a capacity.
pub fn data_banks(capacity_kb: u32) -> (u32, u32, u32) {
    let bank_kb = capacity_kb.min(MAX_BANK_KB);
    let count = (capacity_kb / bank_kb).max(1);
    let words = bank_kb * 1024 * 8 / BANK_BITS;
    (words, BANK_BITS, count)
}

/// Tag array shapes (words, bits, count) for a capacity.
pub fn tag_banks(capacity_kb: u32) -> (u32, u32, u32) {
    let sets = (capacity_kb * 1024 / LINE_BYTES).max(64);
    if sets > 8192 {
        (sets / 2, TAG_BITS, 2)
    } else {
        (sets, TAG_BITS, 1)
    }
}

/// Builds one cache level: banked data arrays, a tag array, and a
/// controller module wired to every macro pin.
///
/// Macro input pins (address/data/control) are driven by controller
/// boundary registers through shared buses (address and write data
/// broadcast to all banks, per-bank chip enables); every macro data
/// output drives a net sampled by the controller. Macro clock pins
/// join the tile clock net, so CTS sees them as sinks.
///
/// # Panics
///
/// Panics if `capacity_kb` is zero.
pub fn build_cache(
    design: &mut Design,
    rng: &mut SmallRng,
    catalog: &mut MacroCatalog,
    clock: NetId,
    spec: &CacheSpec<'_>,
) -> CacheInsts {
    assert!(spec.capacity_kb > 0, "cache capacity must be positive");
    let name = spec.name;

    let (dw, db, dn) = data_banks(spec.capacity_kb);
    let (tw, tb, tn) = tag_banks(spec.capacity_kb);
    let data_master = catalog.master(design, dw, db);
    let tag_master = catalog.master(design, tw, tb);

    let mut data_macros = Vec::new();
    for b in 0..dn {
        data_macros.push(design.add_macro_in(format!("{name}_data{b}"), data_master, spec.group));
    }
    let mut tag_macros = Vec::new();
    for b in 0..tn {
        tag_macros.push(design.add_macro_in(format!("{name}_tag{b}"), tag_master, spec.group));
    }

    // Shared buses the controller drives.
    let mut drive_nets: Vec<NetId> = spec.drive.to_vec();
    let bus = |design: &mut Design, label: &str, n: u32| -> Vec<NetId> {
        (0..n)
            .map(|i| design.add_net(format!("{name}_{label}{i}")))
            .collect()
    };
    let data_addr = bus(design, "daddr", addr_width(dw));
    let data_din = bus(design, "ddin", db);
    let data_ce = bus(design, "dce", dn);
    let data_we = bus(design, "dwe", 1);
    let tag_addr = bus(design, "taddr", addr_width(tw));
    let tag_din = bus(design, "tdin", tb);
    let tag_ce = bus(design, "tce", tn);
    let tag_we = bus(design, "twe", 1);
    for b in [
        &data_addr, &data_din, &data_ce, &data_we, &tag_addr, &tag_din, &tag_ce, &tag_we,
    ] {
        drive_nets.extend_from_slice(b);
    }

    // Macro outputs. Multi-bank caches mux each bank's wide data
    // output down to a narrow local bus next to the bank (as real
    // banked arrays do) — min-cut placement pulls each mux to its
    // bank, so only the narrow buses cross the die.
    let mut ext_in: Vec<NetId> = spec.ext_in.to_vec();
    let mut dout_nets = Vec::new();

    // Wire the macros.
    let wire_bank = |design: &mut Design,
                     inst: InstId,
                     master: macro3d_netlist::MacroMasterId,
                     addr: &[NetId],
                     din: &[NetId],
                     ce: NetId,
                     we: NetId,
                     dout_nets: &mut Vec<NetId>| {
        let def = design.macro_master(master).clone();
        for (pin_ix, pin) in def.pins.iter().enumerate() {
            let pr = PinRef::inst(inst, pin_ix as u16);
            match pin.class {
                PinClass::Clock => design.connect(clock, pr),
                PinClass::Address => {
                    let bit = bus_bit(&pin.name);
                    design.connect(addr[bit.min(addr.len() - 1)], pr);
                }
                PinClass::DataIn => {
                    let bit = bus_bit(&pin.name);
                    design.connect(din[bit.min(din.len() - 1)], pr);
                }
                PinClass::Control => {
                    if pin.name == "we" {
                        design.connect(we, pr);
                    } else {
                        design.connect(ce, pr);
                    }
                }
                PinClass::DataOut | PinClass::Sensor => {
                    let n = design.add_net(format!("{}_q{}", design.inst(inst).name, pin_ix));
                    design.connect(n, pr);
                    dout_nets.push(n);
                }
            }
        }
    };

    let mut ctrl_extra = Vec::new();
    let use_bank_mux = data_macros.len() > 2;
    for (b, &inst) in data_macros.iter().enumerate() {
        let mut bank_douts = Vec::new();
        wire_bank(
            design,
            inst,
            data_master,
            &data_addr,
            &data_din,
            data_ce[b],
            data_we[0],
            &mut bank_douts,
        );
        if use_bank_mux {
            // per-bank read mux: samples the bank's wide output,
            // drives a narrow local bus toward the controller
            let bus: Vec<NetId> = (0..BANK_OUT_BITS)
                .map(|i| design.add_net(format!("{name}_b{b}_rd{i}")))
                .collect();
            let mux_spec = LogicSpec::new(
                format!("{name}_rdmux{b}"),
                (bank_douts.len() / 2).max(32),
                spec.group,
            );
            let m = generate_logic(
                design,
                rng,
                &mux_spec,
                clock,
                LogicIo {
                    ext_in: &bank_douts,
                    drive: &bus,
                },
            );
            ctrl_extra.extend(m.insts);
            dout_nets.extend(bus);
        } else {
            dout_nets.extend(bank_douts);
        }
    }
    for (b, &inst) in tag_macros.iter().enumerate() {
        wire_bank(
            design,
            inst,
            tag_master,
            &tag_addr,
            &tag_din,
            tag_ce[b],
            tag_we[0],
            &mut dout_nets,
        );
    }
    ext_in.extend_from_slice(&dout_nets);

    // The controller.
    let logic_spec = LogicSpec::new(format!("{name}_ctrl"), spec.ctrl_gates, spec.group);
    let module = generate_logic(
        design,
        rng,
        &logic_spec,
        clock,
        LogicIo {
            ext_in: &ext_in,
            drive: &drive_nets,
        },
    );

    let mut ctrl = module.insts;
    ctrl.extend(ctrl_extra);
    CacheInsts {
        ctrl,
        data_macros,
        tag_macros,
    }
}

/// Address bus width for a word count.
pub fn addr_width(words: u32) -> u32 {
    (32 - (words - 1).leading_zeros()).max(1)
}

/// Extracts the bit index from a bus pin name like `din[17]`.
fn bus_bit(name: &str) -> usize {
    name.split('[')
        .nth(1)
        .and_then(|s| s.trim_end_matches(']').parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::libgen::n28_library;
    use macro3d_tech::PinDir;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn bank_shapes() {
        // 256 kB -> 8 x 32 kB banks of 2048x128
        assert_eq!(data_banks(256), (2048, 128, 8));
        // 8 kB -> single 512x128 bank
        assert_eq!(data_banks(8), (512, 128, 1));
        // 1 MB tag: 16384 sets split into 2 arrays
        assert_eq!(tag_banks(1024), (8192, TAG_BITS, 2));
        assert_eq!(tag_banks(16), (256, TAG_BITS, 1));
    }

    #[test]
    fn cache_wiring_validates() {
        let lib = Arc::new(n28_library(8.0));
        let mut d = Design::new("cache_test", lib);
        let clk_p = d.add_port("clk", PinDir::Input, None);
        let clk = d.add_net("clk");
        d.connect(clk, PinRef::Port(clk_p));
        // request nets driven by ports; response nets sink-free (legal)
        let req: Vec<NetId> = (0..8)
            .map(|i| {
                let p = d.add_port(format!("req{i}"), PinDir::Input, None);
                let n = d.add_net(format!("req{i}"));
                d.connect(n, PinRef::Port(p));
                n
            })
            .collect();
        let resp: Vec<NetId> = (0..8).map(|i| d.add_net(format!("resp{i}"))).collect();

        let mut rng = SmallRng::seed_from_u64(1);
        let mut catalog = MacroCatalog::new();
        let g = d.add_group("l2");
        let insts = build_cache(
            &mut d,
            &mut rng,
            &mut catalog,
            clk,
            &CacheSpec {
                name: "l2",
                capacity_kb: 64,
                ctrl_gates: 2_000,
                group: g,
                ext_in: &req,
                drive: &resp,
            },
        );
        assert_eq!(insts.data_macros.len(), 2);
        assert_eq!(insts.tag_macros.len(), 1);
        assert!(insts.ctrl.len() >= 2_000);
        assert_eq!(d.validate(), Ok(()));
    }

    #[test]
    fn catalog_deduplicates_masters() {
        let lib = Arc::new(n28_library(1.0));
        let mut d = Design::new("t", lib);
        let mut c = MacroCatalog::new();
        let a = c.master(&mut d, 2048, 128);
        let b = c.master(&mut d, 2048, 128);
        let other = c.master(&mut d, 512, 128);
        assert_eq!(a, b);
        assert_ne!(a, other);
        assert_eq!(d.macro_masters().len(), 2);
    }

    #[test]
    fn macro_clock_pins_on_clock_net() {
        let lib = Arc::new(n28_library(8.0));
        let mut d = Design::new("t", lib);
        let clk_p = d.add_port("clk", PinDir::Input, None);
        let clk = d.add_net("clk");
        d.connect(clk, PinRef::Port(clk_p));
        let req: Vec<NetId> = (0..2)
            .map(|i| {
                let p = d.add_port(format!("r{i}"), PinDir::Input, None);
                let n = d.add_net(format!("r{i}"));
                d.connect(n, PinRef::Port(p));
                n
            })
            .collect();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut cat = MacroCatalog::new();
        let insts = build_cache(
            &mut d,
            &mut rng,
            &mut cat,
            clk,
            &CacheSpec {
                name: "l1",
                capacity_kb: 8,
                ctrl_gates: 600,
                group: 0,
                ext_in: &req,
                drive: &[],
            },
        );
        // clock net reaches the macro
        let clock_sinks: Vec<_> = d
            .sinks(clk)
            .filter(|p| p.instance() == Some(insts.data_macros[0]))
            .collect();
        assert_eq!(clock_sinks.len(), 1);
    }
}
