//! Timing constraints (the SDC of the flow).

use macro3d_netlist::{NetId, PortId};

/// Timing constraints for a tile design, mirroring the paper's design
/// setup (Sec. V-1/V-2):
///
/// * one clock;
/// * inter-tile NoC input/output ports carry a *half-cycle* budget
///   (the path continues in the abutting tile instance);
/// * the register/input toggle ratio used for power is 0.2.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingConstraints {
    /// The clock distribution net.
    pub clock_net: NetId,
    /// The clock entry port.
    pub clock_port: PortId,
    /// Ports whose paths must close in half a clock period.
    pub half_cycle_ports: Vec<PortId>,
    /// Input slew assumed at input ports, ps.
    pub input_slew_ps: f64,
    /// Load assumed on output ports, fF.
    pub port_load_ff: f64,
    /// Toggle ratio per clock cycle for power analysis.
    pub toggle_rate: f64,
}

impl TimingConstraints {
    /// Constraints with the paper's defaults for the given clock.
    pub fn new(clock_net: NetId, clock_port: PortId) -> Self {
        TimingConstraints {
            clock_net,
            clock_port,
            half_cycle_ports: Vec::new(),
            input_slew_ps: 50.0,
            port_load_ff: 5.0,
            toggle_rate: 0.2,
        }
    }

    /// Timing budget fraction for a port: 0.5 for half-cycle
    /// (inter-tile) ports, 1.0 otherwise.
    pub fn port_budget(&self, port: PortId) -> f64 {
        if self.half_cycle_ports.contains(&port) {
            0.5
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets() {
        let mut c = TimingConstraints::new(NetId(0), PortId(0));
        c.half_cycle_ports.push(PortId(3));
        assert_eq!(c.port_budget(PortId(3)), 0.5);
        assert_eq!(c.port_budget(PortId(4)), 1.0);
        assert_eq!(c.toggle_rate, 0.2);
    }
}
