//! Tile assembly: core + cache hierarchy + NoCs.

use crate::cache::{build_cache, CacheSpec, MacroCatalog};
use crate::config::TileConfig;
use crate::noc::{build_router, RouterSpec};
use crate::sdc::TimingConstraints;
use macro3d_netlist::rent::{generate_logic, LogicIo, LogicSpec};
use macro3d_netlist::{Design, NetId, PinRef, Side};
use macro3d_tech::libgen::n28_library;
use macro3d_tech::PinDir;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A generated tile: netlist plus constraints.
#[derive(Clone, Debug)]
pub struct TileNetlist {
    /// The flat netlist.
    pub design: Design,
    /// Timing constraints (clock, half-cycle IO, toggle rate).
    pub constraints: TimingConstraints,
}

/// Generates an OpenPiton-like tile for the given configuration.
///
/// The produced design always passes [`Design::validate`]; generation
/// is deterministic for a fixed `config.seed`.
///
/// # Panics
///
/// Panics if the configuration's gate budgets underflow the structural
/// minimums (only possible with extreme `scale`).
///
/// # Examples
///
/// ```no_run
/// use macro3d_soc::{generate_tile, TileConfig};
///
/// let tile = generate_tile(&TileConfig::small_cache().with_scale(32.0));
/// assert!(tile.design.num_insts() > 5_000);
/// ```
pub fn generate_tile(config: &TileConfig) -> TileNetlist {
    let lib = Arc::new(n28_library(config.scale));
    let mut d = Design::new(config.name.clone(), lib);
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut catalog = if config.n40_memory_die {
        MacroCatalog::with_compiler(macro3d_sram::MemoryCompiler::n40())
    } else {
        MacroCatalog::new()
    };

    // Clock.
    let clk_port = d.add_port("clk", PinDir::Input, Some(Side::West));
    let clk = d.add_net("clk");
    d.connect(clk, PinRef::Port(clk_port));

    // Configuration/reset-style inputs sampled by the frontend.
    let cfg_nets: Vec<NetId> = (0..8)
        .map(|i| {
            let p = d.add_port(format!("cfg[{i}]"), PinDir::Input, Some(Side::West));
            let n = d.add_net(format!("cfg{i}"));
            d.connect(n, PinRef::Port(p));
            n
        })
        .collect();

    // Channel nets between modules (each driven by the producer's
    // boundary registers).
    let channel = |d: &mut Design, name: &str, n: u32| -> Vec<NetId> {
        (0..n).map(|i| d.add_net(format!("{name}{i}"))).collect()
    };
    let w = 32u32;
    let fe_de = channel(&mut d, "fe_de", w);
    let de_is = channel(&mut d, "de_is", w);
    let is_exu = channel(&mut d, "is_exu", w);
    let is_fpu = channel(&mut d, "is_fpu", 24);
    let is_lsu = channel(&mut d, "is_lsu", w);
    let is_fe = channel(&mut d, "is_fe", 16);
    let exu_is = channel(&mut d, "exu_is", 16);
    let fpu_is = channel(&mut d, "fpu_is", 16);
    let lsu_is = channel(&mut d, "lsu_is", 16);
    let req_l1i = channel(&mut d, "req_l1i", w);
    let resp_l1i = channel(&mut d, "resp_l1i", w);
    let req_l1d = channel(&mut d, "req_l1d", w);
    let resp_l1d = channel(&mut d, "resp_l1d", w);
    let l1i_l2 = channel(&mut d, "l1i_l2", 16);
    let l2_l1i = channel(&mut d, "l2_l1i", 16);
    let l1d_l2 = channel(&mut d, "l1d_l2", 16);
    let l2_l1d = channel(&mut d, "l2_l1d", 16);
    let l2_l3 = channel(&mut d, "l2_l3", 16);
    let l3_l2 = channel(&mut d, "l3_l2", 16);
    let l3_noc: Vec<Vec<NetId>> = (0..config.num_nocs)
        .map(|k| channel(&mut d, &format!("l3_noc{k}_"), 16))
        .collect();
    let noc_l3: Vec<Vec<NetId>> = (0..config.num_nocs)
        .map(|k| channel(&mut d, &format!("noc{k}_l3_"), 16))
        .collect();

    // Core submodules.
    let gen_module = |d: &mut Design,
                      rng: &mut SmallRng,
                      name: &str,
                      kgates: f64,
                      ext: Vec<NetId>,
                      drv: Vec<NetId>| {
        let group = d.add_group(name.to_string());
        let spec = LogicSpec::new(name.to_string(), config.gates(kgates), group);
        generate_logic(
            d,
            rng,
            &spec,
            clk,
            LogicIo {
                ext_in: &ext,
                drive: &drv,
            },
        )
    };

    let subs = config.core_submodules();
    // INVARIANT: lookups below only use names `core_submodules` emits.
    #[allow(clippy::expect_used)]
    let budget = |name: &str| -> f64 {
        subs.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, g)| *g)
            .expect("submodule exists")
    };

    gen_module(
        &mut d,
        &mut rng,
        "core.frontend",
        budget("frontend"),
        [cfg_nets.clone(), resp_l1i.clone(), is_fe.clone()].concat(),
        [req_l1i.clone(), fe_de.clone()].concat(),
    );
    gen_module(
        &mut d,
        &mut rng,
        "core.decode",
        budget("decode"),
        fe_de.clone(),
        de_is.clone(),
    );
    gen_module(
        &mut d,
        &mut rng,
        "core.issue",
        budget("issue"),
        [
            de_is.clone(),
            exu_is.clone(),
            fpu_is.clone(),
            lsu_is.clone(),
        ]
        .concat(),
        [
            is_exu.clone(),
            is_fpu.clone(),
            is_lsu.clone(),
            is_fe.clone(),
        ]
        .concat(),
    );
    gen_module(
        &mut d,
        &mut rng,
        "core.exu",
        budget("exu"),
        is_exu.clone(),
        exu_is.clone(),
    );
    gen_module(
        &mut d,
        &mut rng,
        "core.fpu",
        budget("fpu"),
        is_fpu.clone(),
        fpu_is.clone(),
    );
    gen_module(
        &mut d,
        &mut rng,
        "core.lsu",
        budget("lsu"),
        [is_lsu.clone(), resp_l1d.clone()].concat(),
        [lsu_is.clone(), req_l1d.clone()].concat(),
    );

    // Cache hierarchy.
    let mut build_level = |d: &mut Design,
                           rng: &mut SmallRng,
                           name: &str,
                           kb: u32,
                           kgates: f64,
                           ext: Vec<NetId>,
                           drv: Vec<NetId>| {
        let group = d.add_group(name.to_string());
        build_cache(
            d,
            rng,
            &mut catalog,
            clk,
            &CacheSpec {
                name,
                capacity_kb: kb,
                ctrl_gates: config.gates(kgates),
                group,
                ext_in: &ext,
                drive: &drv,
            },
        )
    };

    build_level(
        &mut d,
        &mut rng,
        "l1i",
        config.l1i_kb,
        config.l1i_ctrl_kgates,
        [req_l1i.clone(), l2_l1i.clone()].concat(),
        [resp_l1i.clone(), l1i_l2.clone()].concat(),
    );
    build_level(
        &mut d,
        &mut rng,
        "l1d",
        config.l1d_kb,
        config.l1d_ctrl_kgates,
        [req_l1d.clone(), l2_l1d.clone()].concat(),
        [resp_l1d.clone(), l1d_l2.clone()].concat(),
    );
    build_level(
        &mut d,
        &mut rng,
        "l2",
        config.l2_kb,
        config.l2_ctrl_kgates,
        [l1i_l2.clone(), l1d_l2.clone(), l3_l2.clone()].concat(),
        [l2_l1i.clone(), l2_l1d.clone(), l2_l3.clone()].concat(),
    );
    build_level(
        &mut d,
        &mut rng,
        "l3",
        config.l3_kb,
        config.l3_ctrl_kgates,
        [l2_l3.clone(), noc_l3.concat()].concat(),
        [l3_l2.clone(), l3_noc.concat()].concat(),
    );

    // NoC routers.
    let mut constraints = TimingConstraints::new(clk, clk_port);
    for k in 0..config.num_nocs as usize {
        let group = d.add_group(format!("noc{k}"));
        let r = build_router(
            &mut d,
            &mut rng,
            clk,
            &RouterSpec {
                name: &format!("noc{k}"),
                gates: config.gates(config.noc_kgates),
                width: config.noc_width,
                group,
                local_in: &l3_noc[k],
                local_out: &noc_l3[k],
            },
        );
        constraints.half_cycle_ports.extend(r.inter_tile_ports);
    }

    TileNetlist {
        design: d,
        constraints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_netlist::DesignStats;

    fn tiny(cfg: TileConfig) -> TileNetlist {
        generate_tile(&cfg.with_scale(64.0))
    }

    #[test]
    fn small_cache_tile_validates() {
        let t = tiny(TileConfig::small_cache());
        assert_eq!(t.design.validate(), Ok(()));
    }

    #[test]
    fn large_cache_tile_validates() {
        let t = tiny(TileConfig::large_cache());
        assert_eq!(t.design.validate(), Ok(()));
    }

    #[test]
    fn macro_area_dominates_even_small_caches() {
        // The paper's motivation: macros occupy > 50% of area even
        // with small caches.
        let t = tiny(TileConfig::small_cache());
        let s = DesignStats::compute(&t.design);
        assert!(
            s.macro_area_fraction() > 0.5,
            "macro fraction {}",
            s.macro_area_fraction()
        );
    }

    #[test]
    fn logic_area_calibrated() {
        // At any scale the *area* should land near the paper's
        // 0.29 mm^2 (small config).
        let t = generate_tile(&TileConfig::small_cache().with_scale(16.0));
        let s = DesignStats::compute(&t.design);
        let mm2 = s.cell_area_um2 / 1e6;
        assert!((0.24..0.40).contains(&mm2), "logic area {mm2} mm2");
    }

    #[test]
    fn macro_count_matches_banking() {
        let t = tiny(TileConfig::small_cache());
        let s = DesignStats::compute(&t.design);
        // data: 1 (l1i 8k) + 1 (l1d 16k) + 1 (l2 16k) + 8 (l3 256k) = 11
        // tags: 4
        assert_eq!(s.num_macros, 15);
    }

    #[test]
    fn is_deterministic() {
        let a = tiny(TileConfig::small_cache());
        let b = tiny(TileConfig::small_cache());
        assert_eq!(a.design.num_insts(), b.design.num_insts());
        assert_eq!(a.design.num_nets(), b.design.num_nets());
    }

    #[test]
    fn half_cycle_ports_cover_all_noc_pins() {
        let cfg = TileConfig::small_cache().with_scale(64.0);
        let t = generate_tile(&cfg);
        // 3 nocs x 4 sides x width x (in+out)
        let expected = (cfg.num_nocs * 4 * cfg.noc_width * 2) as usize;
        assert_eq!(t.constraints.half_cycle_ports.len(), expected);
    }

    #[test]
    fn clock_reaches_macros_and_ffs() {
        let t = tiny(TileConfig::small_cache());
        let d = &t.design;
        let clock_sink_insts: std::collections::HashSet<_> = d
            .sinks(t.constraints.clock_net)
            .filter_map(|p| p.instance())
            .collect();
        let macro_count = d.inst_ids().filter(|&i| d.is_macro(i)).count();
        let macros_clocked = d
            .inst_ids()
            .filter(|&i| d.is_macro(i) && clock_sink_insts.contains(&i))
            .count();
        assert_eq!(macro_count, macros_clocked);
        assert!(clock_sink_insts.len() > macro_count, "FFs also clocked");
    }
}
