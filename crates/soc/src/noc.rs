//! NoC router generation with inter-tile port constraints.
//!
//! Each router owns four direction links. Outgoing bits are driven by
//! the router's boundary registers and exported on edge-constrained
//! output ports; incoming bits arrive on input ports on the opposite
//! edge. An outgoing pin and the same-index incoming pin on the
//! opposite edge are marked as an *aligned pair*: when tile instances
//! abut, the neighbour's output lands exactly on this tile's input
//! (the paper's Sec. V-1 pin-alignment constraint). Both carry the
//! half-cycle timing budget.

use macro3d_netlist::rent::{generate_logic, LogicIo, LogicSpec};
use macro3d_netlist::{Design, InstId, NetId, PinRef, PortId, Side};
use macro3d_tech::PinDir;
use rand::rngs::SmallRng;

/// Everything created for one router.
#[derive(Clone, Debug)]
pub struct RouterInsts {
    /// Router standard cells.
    pub insts: Vec<InstId>,
    /// Inter-tile ports (both directions, all sides) — these carry
    /// the half-cycle IO constraint.
    pub inter_tile_ports: Vec<PortId>,
}

/// Parameters for one router.
pub struct RouterSpec<'a> {
    /// Name prefix, e.g. `"noc1"`.
    pub name: &'a str,
    /// Gate count (already scale-compressed).
    pub gates: usize,
    /// Link width per direction, bits.
    pub width: u32,
    /// Group tag.
    pub group: u32,
    /// Local input nets (e.g. from the L3 slice).
    pub local_in: &'a [NetId],
    /// Local output nets the router must drive (e.g. to the L3
    /// slice).
    pub local_out: &'a [NetId],
}

/// Builds one router: logic module + the four direction links.
pub fn build_router(
    design: &mut Design,
    rng: &mut SmallRng,
    clock: NetId,
    spec: &RouterSpec<'_>,
) -> RouterInsts {
    let name = spec.name;
    let sides = [Side::North, Side::South, Side::East, Side::West];

    // Output nets (driven by router boundary registers) and their ports.
    let mut drive: Vec<NetId> = spec.local_out.to_vec();
    let mut ext_in: Vec<NetId> = spec.local_in.to_vec();
    let mut inter_tile_ports = Vec::new();
    let mut out_ports: Vec<Vec<PortId>> = Vec::new();
    let mut in_ports: Vec<Vec<PortId>> = Vec::new();

    for side in sides {
        let mut outs = Vec::new();
        let mut ins = Vec::new();
        for b in 0..spec.width {
            let side_tag = side_tag(side);
            // outgoing bit: net driven by boundary register, exported
            let out_net = design.add_net(format!("{name}_{side_tag}_o{b}"));
            let out_port = design.add_port(
                format!("{name}_{side_tag}_out[{b}]"),
                PinDir::Output,
                Some(side),
            );
            design.connect(out_net, PinRef::Port(out_port));
            drive.push(out_net);
            outs.push(out_port);
            inter_tile_ports.push(out_port);

            // incoming bit: port drives net, router samples
            let in_net = design.add_net(format!("{name}_{side_tag}_i{b}"));
            let in_port = design.add_port(
                format!("{name}_{side_tag}_in[{b}]"),
                PinDir::Input,
                Some(side),
            );
            design.connect(in_net, PinRef::Port(in_port));
            ext_in.push(in_net);
            ins.push(in_port);
            inter_tile_ports.push(in_port);
        }
        out_ports.push(outs);
        in_ports.push(ins);
    }

    // Align out[N] with in[S], out[S] with in[N], out[E] with in[W],
    // out[W] with in[E] — abutting tiles connect without routing.
    for (a, b) in [(0usize, 1usize), (1, 0), (2, 3), (3, 2)] {
        for bit in 0..spec.width as usize {
            design.align_ports(out_ports[a][bit], in_ports[b][bit]);
        }
    }

    let mut logic_spec = LogicSpec::new(format!("{name}_rtr"), spec.gates, spec.group);
    // NoC routers are shallow 1–2-stage pipelines; their inter-tile
    // paths must close in half a cycle (paper Sec. V-1)
    logic_spec.max_depth = 7;
    let module = generate_logic(
        design,
        rng,
        &logic_spec,
        clock,
        LogicIo {
            ext_in: &ext_in,
            drive: &drive,
        },
    );

    RouterInsts {
        insts: module.insts,
        inter_tile_ports,
    }
}

fn side_tag(side: Side) -> &'static str {
    match side {
        Side::North => "n",
        Side::South => "s",
        Side::East => "e",
        Side::West => "w",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macro3d_tech::libgen::n28_library;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn build() -> (Design, RouterInsts) {
        let lib = Arc::new(n28_library(8.0));
        let mut d = Design::new("noc_test", lib);
        let clk_p = d.add_port("clk", PinDir::Input, None);
        let clk = d.add_net("clk");
        d.connect(clk, PinRef::Port(clk_p));
        let local_in: Vec<NetId> = (0..4)
            .map(|i| {
                let p = d.add_port(format!("li{i}"), PinDir::Input, None);
                let n = d.add_net(format!("li{i}"));
                d.connect(n, PinRef::Port(p));
                n
            })
            .collect();
        let local_out: Vec<NetId> = (0..4).map(|i| d.add_net(format!("lo{i}"))).collect();
        let mut rng = SmallRng::seed_from_u64(9);
        let r = build_router(
            &mut d,
            &mut rng,
            clk,
            &RouterSpec {
                name: "noc0",
                gates: 800,
                width: 8,
                group: 0,
                local_in: &local_in,
                local_out: &local_out,
            },
        );
        (d, r)
    }

    #[test]
    fn router_validates() {
        let (d, r) = build();
        assert_eq!(d.validate(), Ok(()));
        // 4 sides x 8 bits x (in + out)
        assert_eq!(r.inter_tile_ports.len(), 64);
    }

    #[test]
    fn ports_are_edge_constrained_and_aligned() {
        let (d, r) = build();
        let mut aligned = 0;
        for &p in &r.inter_tile_ports {
            let port = d.port(p);
            assert!(port.side.is_some(), "inter-tile port lacks side");
            if port.align_key.is_some() {
                aligned += 1;
            }
        }
        assert_eq!(aligned, 64); // every inter-tile pin participates in a pair
    }

    #[test]
    fn north_out_pairs_with_south_in() {
        let (d, _) = build();
        // find noc0_n_out[0] and noc0_s_in[0]; they must share a key
        let mut north_key = None;
        let mut south_key = None;
        for pid in d.port_ids() {
            let p = d.port(pid);
            if p.name == "noc0_n_out[0]" {
                north_key = p.align_key;
            }
            if p.name == "noc0_s_in[0]" {
                south_key = p.align_key;
            }
        }
        assert!(north_key.is_some());
        assert_eq!(north_key, south_key);
    }
}
