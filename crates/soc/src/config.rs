//! Tile configurations (the paper's two cache setups).

/// Configuration of one OpenPiton-like tile.
///
/// The two presets reproduce the paper's Sec. V setups:
///
/// * [`TileConfig::small_cache`] — 8 kB L1I, 16 kB L1D, 16 kB L2,
///   256 kB L3 slice;
/// * [`TileConfig::large_cache`] — 16 kB L1I/L1D, 128 kB L2, 1 MB L3
///   slice.
///
/// Gate budgets are calibrated so the full-scale (`scale = 1`) logic
/// areas land at the paper's 0.29 mm² (small) / 0.47 mm² (large); see
/// `DESIGN.md` §5 for the `scale` knob.
#[derive(Clone, Debug, PartialEq)]
pub struct TileConfig {
    /// Configuration name, used as the design name.
    pub name: String,
    /// L1 instruction cache capacity, kB.
    pub l1i_kb: u32,
    /// L1 data cache capacity, kB.
    pub l1d_kb: u32,
    /// Private L2 capacity, kB.
    pub l2_kb: u32,
    /// Shared L3 slice capacity, kB.
    pub l3_kb: u32,
    /// Instance-count compression factor (≥ 1): gate counts are
    /// divided and cell sizes/drives multiplied by this, keeping total
    /// area, pin capacitance and drive-vs-wire balance calibrated.
    pub scale: f64,
    /// Bits per direction per NoC (inter-tile links).
    pub noc_width: u32,
    /// Number of parallel NoCs (OpenPiton uses 3).
    pub num_nocs: u32,
    /// RNG seed for netlist generation.
    pub seed: u64,
    /// Compile the cache macros in the older N40 memory node instead
    /// of N28 (heterogeneous integration, the paper's future work).
    pub n40_memory_die: bool,
    /// Core gate budget at scale 1, thousands of gates.
    pub core_kgates: f64,
    /// L1I controller budget, kgates.
    pub l1i_ctrl_kgates: f64,
    /// L1D controller budget, kgates.
    pub l1d_ctrl_kgates: f64,
    /// L2 controller budget, kgates.
    pub l2_ctrl_kgates: f64,
    /// L3 slice controller budget, kgates.
    pub l3_ctrl_kgates: f64,
    /// Per-router NoC budget, kgates.
    pub noc_kgates: f64,
}

impl TileConfig {
    /// The paper's small-cache tile.
    pub fn small_cache() -> Self {
        TileConfig {
            name: "openpiton_tile_small".to_string(),
            l1i_kb: 8,
            l1d_kb: 16,
            l2_kb: 16,
            l3_kb: 256,
            scale: 8.0,
            noc_width: 16,
            num_nocs: 3,
            seed: 0x3d_1c5,
            n40_memory_die: false,
            core_kgates: 128.0,
            l1i_ctrl_kgates: 10.0,
            l1d_ctrl_kgates: 11.0,
            l2_ctrl_kgates: 18.0,
            l3_ctrl_kgates: 26.0,
            noc_kgates: 7.0,
        }
    }

    /// The paper's modern/large-cache tile.
    pub fn large_cache() -> Self {
        TileConfig {
            name: "openpiton_tile_large".to_string(),
            l1i_kb: 16,
            l1d_kb: 16,
            l2_kb: 128,
            l3_kb: 1024,
            scale: 8.0,
            noc_width: 16,
            num_nocs: 3,
            seed: 0x3d_1c5,
            n40_memory_die: false,
            core_kgates: 150.0,
            l1i_ctrl_kgates: 16.0,
            l1d_ctrl_kgates: 17.0,
            l2_ctrl_kgates: 43.0,
            l3_ctrl_kgates: 75.0,
            noc_kgates: 15.0,
        }
    }

    /// A heavily shrunk tile for tests, smoke gates and service
    /// benchmarks: small caches, high compression scale, trimmed gate
    /// budgets. Full flows over it finish in well under a second while
    /// still exercising every stage (macros, NoCs, F2F vias, CTS).
    pub fn mini() -> Self {
        TileConfig {
            name: "openpiton_tile_mini".to_string(),
            l1i_kb: 8,
            l1d_kb: 8,
            l2_kb: 8,
            l3_kb: 64,
            scale: 32.0,
            noc_width: 4,
            num_nocs: 3,
            seed: 0x3d_1c5,
            n40_memory_die: false,
            core_kgates: 26.0,
            l1i_ctrl_kgates: 3.0,
            l1d_ctrl_kgates: 3.0,
            l2_ctrl_kgates: 4.0,
            l3_ctrl_kgates: 5.0,
            noc_kgates: 2.0,
        }
    }

    /// Returns the configuration with a different compression scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale < 1.0`.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale >= 1.0, "scale must be >= 1");
        self.scale = scale;
        self
    }

    /// Returns the configuration with a different RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with the memory die retargeted to
    /// the N40 node.
    pub fn with_n40_memory(mut self) -> Self {
        self.n40_memory_die = true;
        self
    }

    /// Gate count for a budget of `kgates` thousand gates after scale
    /// compression (at least 16 gates so tiny test scales stay
    /// well-formed).
    pub fn gates(&self, kgates: f64) -> usize {
        ((kgates * 1_000.0 / self.scale) as usize).max(16)
    }

    /// Core submodule budgets as (name, kgates) — an Ariane-like
    /// split.
    pub fn core_submodules(&self) -> Vec<(&'static str, f64)> {
        let c = self.core_kgates;
        vec![
            ("frontend", 0.18 * c),
            ("decode", 0.08 * c),
            ("issue", 0.15 * c),
            ("exu", 0.16 * c),
            ("lsu", 0.20 * c),
            ("fpu", 0.23 * c),
        ]
    }

    /// Total logic gate budget, kgates (core + cache controllers +
    /// NoCs), before scaling.
    pub fn total_kgates(&self) -> f64 {
        self.core_kgates
            + self.l1i_ctrl_kgates
            + self.l1d_ctrl_kgates
            + self.l2_ctrl_kgates
            + self.l3_ctrl_kgates
            + self.noc_kgates * self.num_nocs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_cache_sizes() {
        let s = TileConfig::small_cache();
        assert_eq!((s.l1i_kb, s.l1d_kb, s.l2_kb, s.l3_kb), (8, 16, 16, 256));
        let l = TileConfig::large_cache();
        assert_eq!((l.l1i_kb, l.l1d_kb, l.l2_kb, l.l3_kb), (16, 16, 128, 1024));
    }

    #[test]
    fn gate_budgets_calibrated_to_paper_areas() {
        // ~1.36 um^2 mean effective cell area (measured over the
        // generated mix) => 0.29 mm^2 needs ~214 kgates, 0.47 ~346.
        let s = TileConfig::small_cache();
        assert!(
            (200.0..230.0).contains(&s.total_kgates()),
            "{}",
            s.total_kgates()
        );
        let l = TileConfig::large_cache();
        assert!(
            (330.0..360.0).contains(&l.total_kgates()),
            "{}",
            l.total_kgates()
        );
    }

    #[test]
    fn scaling_divides_counts() {
        let cfg = TileConfig::small_cache().with_scale(8.0);
        assert_eq!(cfg.gates(80.0), 10_000);
        assert_eq!(cfg.gates(0.001), 16); // floor
    }

    #[test]
    fn core_split_sums_to_core() {
        let cfg = TileConfig::small_cache();
        let sum: f64 = cfg.core_submodules().iter().map(|(_, g)| g).sum();
        assert!((sum - cfg.core_kgates).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scale must be >= 1")]
    fn sub_unit_scale_panics() {
        let _ = TileConfig::small_cache().with_scale(0.5);
    }
}
