fn main() {
    for scale in [8.0, 16.0, 32.0] {
        let t0 = std::time::Instant::now();
        let tile =
            macro3d_soc::generate_tile(&macro3d_soc::TileConfig::small_cache().with_scale(scale));
        let s = macro3d_netlist::DesignStats::compute(&tile.design);
        println!(
            "scale {scale}: {} insts, {:.3} mm2 logic, {:.3} macro frac, {:?}",
            s.num_cells,
            s.cell_area_um2 / 1e6,
            s.macro_area_fraction(),
            t0.elapsed()
        );
    }
}
